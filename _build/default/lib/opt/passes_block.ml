module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Values = Tessera_vm.Values

(* ------------------------------------------------------------------ *)
(* Shared predicates                                                   *)
(* ------------------------------------------------------------------ *)

(* Trees computing only over locals and constants: re-evaluating them at a
   different point in the same block yields the same value, and they can
   never trap. *)
let register_only root =
  let ok (n : Node.t) =
    match n.Node.op with
    | Opcode.Load -> Array.length n.Node.args = 0
    | Opcode.Loadconst | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Neg
    | Opcode.Shift _ | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Compare _
    | Opcode.Branch_op ->
        true
    | Opcode.Cast k -> k <> Opcode.C_check
    | Opcode.Div | Opcode.Rem -> Types.is_floating n.Node.ty
    | _ -> false
  in
  let rec go n = ok n && Array.for_all go n.Node.args in
  go root

let stmt_has_heap_effects (s : Node.t) =
  Node.exists
    (fun (n : Node.t) ->
      match n.Node.op with
      | Opcode.Call | Opcode.Throw_op | Opcode.Synchronization _ -> true
      | Opcode.Arrayop Opcode.Array_copy -> true
      | _ -> false)
    s

let rec replace_equal ~target ~replacement (n : Node.t) =
  if Node.structural_equal n target then replacement
  else
    let changed = ref false in
    let args =
      Array.map
        (fun k ->
          let k' = replace_equal ~target ~replacement k in
          if k' != k then changed := true;
          k')
        n.Node.args
    in
    if !changed then Node.with_args n args else n

(* ------------------------------------------------------------------ *)
(* Generic in-block common-subexpression machinery                      *)
(* ------------------------------------------------------------------ *)

type cse_config = {
  candidate : Node.t -> bool;  (** is this subtree reusable *)
  min_size : int;
  kills : Node.t (* stmt *) -> Node.t (* candidate *) -> bool;
  max_picks : int;
  (* reject first-occurrence statements whose internal evaluation order
     makes early evaluation of the candidate unsound *)
  hoist_barrier : Node.t -> bool;
}

type occurrence = {
  tree : Node.t;
  mutable occs : int list;  (** statement indices, descending *)
  mutable dead : bool;
}

let run_cse_on_block cfg (m : Meth.t) (b : Block.t) =
  let stmts = Array.of_list b.Block.stmts in
  let nstmts = Array.length stmts in
  let entries : (int, occurrence list ref) Hashtbl.t = Hashtbl.create 32 in
  let find tree =
    let h = Node.structural_hash tree in
    let bucket =
      match Hashtbl.find_opt entries h with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.add entries h b;
          b
    in
    match
      List.find_opt (fun e -> Node.structural_equal e.tree tree) !bucket
    with
    | Some e -> e
    | None ->
        let e = { tree; occs = []; dead = false } in
        bucket := e :: !bucket;
        e
  in
  let all_entries () =
    Hashtbl.fold (fun _ b acc -> !b @ acc) entries []
  in
  Array.iteri
    (fun i s ->
      (* collect candidate occurrences of this statement *)
      Node.fold
        (fun () (n : Node.t) ->
          if cfg.candidate n && Node.size n >= cfg.min_size then begin
            let e = find n in
            if not e.dead then e.occs <- i :: e.occs
          end)
        () s;
      (* then apply kills induced by the statement *)
      List.iter
        (fun e -> if (not e.dead) && cfg.kills s e.tree then e.dead <- true)
        (all_entries ()))
    stmts;
  (* pick profitable, non-overlapping entries *)
  let viable =
    all_entries ()
    |> List.filter (fun e -> List.length (List.sort_uniq compare e.occs) >= 1
                             && List.length e.occs >= 2)
    |> List.filter (fun e ->
           let first = List.fold_left min max_int e.occs in
           not (cfg.hoist_barrier stmts.(first)))
    |> List.sort (fun a b ->
           let ben e = (List.length e.occs - 1) * Node.size e.tree in
           compare (ben b) (ben a))
  in
  let overlaps a b =
    Node.exists (fun n -> Node.structural_equal n b.tree) a.tree
    || Node.exists (fun n -> Node.structural_equal n a.tree) b.tree
  in
  let picked =
    List.fold_left
      (fun acc e ->
        if List.length acc >= cfg.max_picks then acc
        else if List.exists (overlaps e) acc then acc
        else e :: acc)
      [] viable
  in
  if picked = [] then (m, b, false)
  else begin
    (* materialize each picked tree into a fresh temporary *)
    let m = ref m in
    let inserts = Array.make nstmts [] in
    let repls = ref [] in
    List.iter
      (fun e ->
        let first = List.fold_left min max_int e.occs in
        let last = List.fold_left max 0 e.occs in
        let m', tmp =
          Treeutil.fresh_temp !m
            (Printf.sprintf "cse%d" (Hashtbl.hash (Node.structural_hash e.tree)))
            e.tree.Node.ty
        in
        m := m';
        inserts.(first) <- Node.store_sym tmp e.tree :: inserts.(first);
        repls := (e.tree, Node.load_sym e.tree.Node.ty tmp, first, last) :: !repls)
      picked;
    let out = ref [] in
    Array.iteri
      (fun i s ->
        List.iter (fun ins -> out := ins :: !out) (inserts.(i));
        let s =
          List.fold_left
            (fun s (target, replacement, first, last) ->
              if i >= first && i <= last then
                replace_equal ~target ~replacement s
              else s)
            s !repls
        in
        out := s :: !out)
      stmts;
    let b = Block.with_stmts b (List.rev !out) in
    (!m, b, true)
  end

let run_cse cfg (m : Meth.t) =
  let m = ref m in
  let blocks = Array.copy !m.Meth.blocks in
  Array.iteri
    (fun i b ->
      let m', b', changed = run_cse_on_block cfg !m b in
      if changed then begin
        m := m';
        blocks.(i) <- b'
      end)
    blocks;
  Meth.with_blocks !m blocks

let alu_root (n : Node.t) =
  match n.Node.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Neg | Opcode.Shift _
  | Opcode.Or | Opcode.And | Opcode.Xor | Opcode.Compare _ ->
      true
  | Opcode.Div | Opcode.Rem -> Types.is_floating n.Node.ty
  | Opcode.Cast k -> k <> Opcode.C_check
  | _ -> false

let cse_config =
  {
    candidate = (fun n -> alu_root n && register_only n);
    min_size = 3;
    kills =
      (fun stmt tree ->
        let stored = Treeutil.stored_syms_of_tree stmt in
        let loaded = Treeutil.loaded_syms_of_tree tree in
        List.exists (fun s -> List.mem s loaded) stored);
    max_picks = 4;
    hoist_barrier = (fun _ -> false);
  }

let local_cse m = run_cse cse_config m

(* Commutative normalization: order pure integer operands canonically so
   [a+b] and [b+a] share structure, then reuse the CSE machinery. *)
let commute m =
  Treeutil.map_method_nodes
    (Node.map_bottom_up (fun (n : Node.t) ->
         match n.Node.op with
         | (Opcode.Add | Opcode.Mul | Opcode.Or | Opcode.And | Opcode.Xor
           | Opcode.Compare Opcode.Eq | Opcode.Compare Opcode.Ne)
           when (not (Types.is_floating n.Node.ty))
                && Array.length n.Node.args = 2
                && register_only n.Node.args.(0)
                && register_only n.Node.args.(1)
                && Node.structural_hash n.Node.args.(0)
                   > Node.structural_hash n.Node.args.(1) ->
             Node.with_args n [| n.Node.args.(1); n.Node.args.(0) |]
         | _ -> n))
    m

let local_vn m = local_cse (commute m)

let field_cse_config =
  {
    candidate =
      (fun (n : Node.t) ->
        n.Node.op = Opcode.Load
        && Array.length n.Node.args > 0
        && Array.for_all register_only n.Node.args);
    min_size = 2;
    kills =
      (fun stmt tree ->
        Treeutil.tree_writes_memory stmt
        ||
        let stored = Treeutil.stored_syms_of_tree stmt in
        let loaded = Treeutil.loaded_syms_of_tree tree in
        List.exists (fun s -> List.mem s loaded) stored);
    max_picks = 4;
    hoist_barrier = stmt_has_heap_effects;
  }

let field_load_cse m = run_cse field_cse_config m

(* ------------------------------------------------------------------ *)
(* Copy and constant propagation                                        *)
(* ------------------------------------------------------------------ *)

(* Forward in-block propagation: [map] holds, per destination symbol, the
   node that may replace a load of it. *)
let propagate ~derive (m : Meth.t) =
  let prop_block (b : Block.t) =
    let map : (int, Node.t) Hashtbl.t = Hashtbl.create 8 in
    let kill_sym s =
      Hashtbl.remove map s;
      (* mappings whose replacement reads s die too *)
      let stale =
        Hashtbl.fold
          (fun dst repl acc ->
            if List.mem s (Treeutil.loaded_syms_of_tree repl) then dst :: acc
            else acc)
          map []
      in
      List.iter (Hashtbl.remove map) stale
    in
    let apply tree =
      Node.map_bottom_up
        (fun (n : Node.t) ->
          if n.Node.op = Opcode.Load && Array.length n.Node.args = 0 then
            match Hashtbl.find_opt map n.Node.sym with
            | Some repl when Types.equal repl.Node.ty n.Node.ty -> repl
            | _ -> n
          else n)
        tree
    in
    let stmts =
      List.map
        (fun (s : Node.t) ->
          let s =
            match s.Node.op with
            | Opcode.Store when Array.length s.Node.args = 1 ->
                Node.with_args s [| apply s.Node.args.(0) |]
            | Opcode.Inc -> s
            | _ -> apply s
          in
          (match s.Node.op with
          | Opcode.Store when Array.length s.Node.args = 1 ->
              kill_sym s.Node.sym;
              let dst_ty = m.Meth.symbols.(s.Node.sym).Tessera_il.Symbol.ty in
              Option.iter
                (fun repl -> Hashtbl.replace map s.Node.sym repl)
                (derive ~dst_ty s.Node.sym s.Node.args.(0))
          | Opcode.Inc -> kill_sym s.Node.sym
          | _ -> ());
          s)
        b.Block.stmts
    in
    let term = Block.map_terminator_nodes apply b.Block.term in
    { b with Block.stmts; term }
  in
  Meth.with_blocks m (Array.map prop_block m.Meth.blocks)

let copy_prop m =
  propagate m ~derive:(fun ~dst_ty _dst (rhs : Node.t) ->
      match rhs.Node.op with
      | Opcode.Load
        when Array.length rhs.Node.args = 0
             && Types.equal rhs.Node.ty dst_ty
             && Types.equal
                  m.Meth.symbols.(rhs.Node.sym).Tessera_il.Symbol.ty dst_ty ->
          Some rhs
      | _ -> None)

let local_const_prop m =
  propagate m ~derive:(fun ~dst_ty _dst (rhs : Node.t) ->
      match rhs.Node.op with
      | Opcode.Loadconst when Types.is_integral dst_ty && Types.is_integral rhs.Node.ty ->
          Some (Node.iconst dst_ty (Values.truncate dst_ty rhs.Node.const))
      | Opcode.Loadconst
        when Types.is_floating dst_ty && Types.is_floating rhs.Node.ty ->
          Some (Node.fconst dst_ty (Node.const_float rhs))
      | _ -> None)

(* ------------------------------------------------------------------ *)
(* Dead code                                                            *)
(* ------------------------------------------------------------------ *)

(* In-block overwrites: a store to [t] is dead when [t] is stored again
   later in the same block with no intervening read.  Backward scan;
   blocks with a handler are skipped (the handler could observe [t] after
   a trap between the two stores). *)
let eliminate_overwritten (b : Block.t) =
  if b.Block.handler <> None then b
  else begin
    let overwritten = Hashtbl.create 8 in
    let read_syms root =
      List.iter (fun s -> Hashtbl.remove overwritten s)
        (Treeutil.loaded_syms_of_tree root)
    in
    List.iter read_syms (Block.terminator_nodes b.Block.term);
    let kept =
      List.fold_left
        (fun acc (s : Node.t) ->
          match s.Node.op with
          | Opcode.Store when Array.length s.Node.args = 1 ->
              let rhs = s.Node.args.(0) in
              let dead = Hashtbl.mem overwritten s.Node.sym in
              if dead then begin
                read_syms rhs;
                if Node.subtree_pure rhs then acc else rhs :: acc
              end
              else begin
                Hashtbl.replace overwritten s.Node.sym ();
                read_syms rhs;
                s :: acc
              end
          | Opcode.Inc ->
              (* reads and writes its symbol *)
              Hashtbl.remove overwritten s.Node.sym;
              s :: acc
          | _ ->
              read_syms s;
              s :: acc)
        []
        (List.rev b.Block.stmts)
    in
    Block.with_stmts b kept
  end

let dead_store_elim (m : Meth.t) =
  let info = Treeutil.sym_info m in
  let dead s =
    info.Treeutil.loads.(s) = 0
    && m.Meth.symbols.(s).Tessera_il.Symbol.kind = Tessera_il.Symbol.Temp
  in
  Meth.with_blocks m
    (Array.map
       (fun b ->
         eliminate_overwritten
           (Treeutil.filter_map_stmts
              (fun (s : Node.t) ->
                match s.Node.op with
                | Opcode.Store
                  when Array.length s.Node.args = 1 && dead s.Node.sym ->
                    let rhs = s.Node.args.(0) in
                    if Node.subtree_pure rhs then None else Some rhs
                | Opcode.Inc when dead s.Node.sym -> None
                | _ -> Some s)
              b))
       m.Meth.blocks)

let dead_tree_elim (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (Treeutil.filter_map_stmts (fun (s : Node.t) ->
            if Node.subtree_pure s then None else Some s))
       m.Meth.blocks)

let unused_symbol_elim (m : Meth.t) =
  let info = Treeutil.sym_info m in
  let n = Array.length m.Meth.symbols in
  let keep =
    Array.init n (fun i ->
        m.Meth.symbols.(i).Tessera_il.Symbol.kind = Tessera_il.Symbol.Arg
        || info.Treeutil.loads.(i) > 0
        || info.Treeutil.stores.(i) > 0)
  in
  if Array.for_all Fun.id keep then m
  else begin
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if keep.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    let symbols =
      Array.of_list
        (List.filteri (fun i _ -> keep.(i)) (Array.to_list m.Meth.symbols))
    in
    let m = Meth.with_symbols m symbols in
    Treeutil.map_method_nodes
      (Node.map_bottom_up (fun (node : Node.t) ->
           let is_local =
             match node.Node.op with
             | Opcode.Load -> Array.length node.Node.args = 0
             | Opcode.Store -> Array.length node.Node.args = 1
             | Opcode.Inc -> true
             | _ -> false
           in
           if is_local && remap.(node.Node.sym) <> node.Node.sym then
             Node.mk ~sym:remap.(node.Node.sym) ~const:node.Node.const
               ~flags:node.Node.flags node.Node.op node.Node.ty node.Node.args
           else node))
      m
  end

(* ------------------------------------------------------------------ *)
(* Control flow                                                          *)
(* ------------------------------------------------------------------ *)

let branch_fold (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (fun (b : Block.t) ->
         match b.Block.term with
         | Block.If { cond; if_true; if_false }
           when cond.Node.op = Opcode.Loadconst ->
             let truthy =
               if Types.is_floating cond.Node.ty then Node.const_float cond <> 0.0
               else cond.Node.const <> 0L
             in
             Block.with_term b (Block.Goto (if truthy then if_true else if_false))
         | Block.If { cond; if_true; if_false } when if_true = if_false ->
             if Node.subtree_pure cond then Block.with_term b (Block.Goto if_true)
             else
               Block.with_stmts
                 (Block.with_term b (Block.Goto if_true))
                 (b.Block.stmts @ [ cond ])
         | _ -> b)
       m.Meth.blocks)

let branch_reversal (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (fun (b : Block.t) ->
         match b.Block.term with
         | Block.If { cond; if_true; if_false } -> (
             match cond.Node.op with
             | Opcode.Compare rel
               when (rel = Opcode.Eq || rel = Opcode.Ne)
                    && Array.length cond.Node.args = 2
                    && cond.Node.args.(1).Node.op = Opcode.Loadconst
                    && cond.Node.args.(1).Node.const = 0L
                    && Types.is_integral cond.Node.args.(0).Node.ty
                    && Types.is_integral cond.Node.args.(1).Node.ty ->
                 let x = cond.Node.args.(0) in
                 if rel = Opcode.Ne then
                   Block.with_term b (Block.If { cond = x; if_true; if_false })
                 else
                   Block.with_term b
                     (Block.If { cond = x; if_true = if_false; if_false = if_true })
             | _ -> b)
         | _ -> b)
       m.Meth.blocks)

let jump_threading (m : Meth.t) =
  let n = Array.length m.Meth.blocks in
  let final = Array.make n (-1) in
  let rec resolve seen b =
    if final.(b) >= 0 then final.(b)
    else if List.mem b seen then b
    else
      let blk = m.Meth.blocks.(b) in
      let r =
        match (blk.Block.stmts, blk.Block.term) with
        | [], Block.Goto t when t <> b -> resolve (b :: seen) t
        | _ -> b
      in
      final.(b) <- r;
      r
  in
  Treeutil.retarget (fun t -> resolve [] t) m

let block_merge (m : Meth.t) =
  let rec go m budget =
    if budget = 0 then m
    else
      let cfg = Cfg.build m in
      let is_handler_target c =
        Array.exists
          (fun (b : Block.t) -> b.Block.handler = Some c)
          m.Meth.blocks
      in
      let candidate = ref None in
      Array.iteri
        (fun bi (b : Block.t) ->
          if !candidate = None then
            match b.Block.term with
            | Block.Goto c
              when c <> 0 && c <> bi
                   && Cfg.single_pred cfg c = Some bi
                   && (not (is_handler_target c))
                   && m.Meth.blocks.(c).Block.handler = b.Block.handler ->
                candidate := Some (bi, c)
            | _ -> ())
        m.Meth.blocks;
      match !candidate with
      | None -> m
      | Some (bi, c) ->
          let blocks = Array.copy m.Meth.blocks in
          let b = blocks.(bi) and cb = blocks.(c) in
          blocks.(bi) <-
            Block.with_term
              (Block.with_stmts b (b.Block.stmts @ cb.Block.stmts))
              cb.Block.term;
          (* leave c in place; it is now unreachable and compacted away *)
          go (Treeutil.compact (Meth.with_blocks m blocks)) (budget - 1)
  in
  go m 32

let unreachable_elim = Treeutil.compact

let greedy_layout (m : Meth.t) =
  let m = Loops.annotate_frequencies m in
  let n = Array.length m.Meth.blocks in
  if n <= 2 then m
  else begin
    let placed = Array.make n false in
    let order = ref [ 0 ] in
    placed.(0) <- true;
    let count = ref 1 in
    let cur = ref 0 in
    while !count < n do
      let succs = Block.successors m.Meth.blocks.(!cur) in
      let next =
        List.filter (fun s -> not placed.(s)) succs
        |> List.sort (fun a b ->
               compare m.Meth.blocks.(b).Block.freq m.Meth.blocks.(a).Block.freq)
        |> function
        | s :: _ -> s
        | [] ->
            (* lowest unplaced id: keeps loop headers before their bodies *)
            let rec find i = if placed.(i) then find (i + 1) else i in
            find 0
      in
      placed.(next) <- true;
      order := next :: !order;
      incr count;
      cur := next
    done;
    Treeutil.reorder m (Array.of_list (List.rev !order))
  end

let block_layout = greedy_layout

let cold_outline (m : Meth.t) =
  let n = Array.length m.Meth.blocks in
  if n <= 2 then m
  else begin
    let is_handler = Array.make n false in
    Array.iter
      (fun (b : Block.t) ->
        match b.Block.handler with Some h -> is_handler.(h) <- true | None -> ())
      m.Meth.blocks;
    let cold i =
      i <> 0
      && (is_handler.(i)
         ||
         match m.Meth.blocks.(i).Block.term with
         | Block.Throw _ -> true
         | _ -> false)
    in
    let hot = List.init n Fun.id |> List.filter (fun i -> not (cold i)) in
    let colds = List.init n Fun.id |> List.filter cold in
    if colds = [] then m
    else Treeutil.reorder m (Array.of_list (hot @ colds))
  end

let profile_block_order (m : Meth.t) =
  let m = Loops.annotate_frequencies m in
  let n = Array.length m.Meth.blocks in
  if n <= 2 then m
  else
    let rest = List.init (n - 1) (fun i -> i + 1) in
    let rest =
      List.stable_sort
        (fun a b ->
          compare m.Meth.blocks.(b).Block.freq m.Meth.blocks.(a).Block.freq)
        rest
    in
    Treeutil.reorder m (Array.of_list (0 :: rest))

let return_merge (m : Meth.t) =
  let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i (b : Block.t) ->
      if b.Block.stmts = [] then
        let key =
          match b.Block.term with
          | Block.Return None -> Some "ret"
          | Block.Return (Some v) when v.Node.op = Opcode.Loadconst ->
              Some
                (Printf.sprintf "ret:%s:%Ld" (Types.name v.Node.ty) v.Node.const)
          | _ -> None
        in
        match key with
        | Some k -> (
            match Hashtbl.find_opt groups k with
            | Some l -> l := i :: !l
            | None -> Hashtbl.add groups k (ref [ i ]))
        | None -> ())
    m.Meth.blocks;
  let remap = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _ l ->
      match List.rev !l with
      | rep :: rest when rest <> [] ->
          List.iter (fun i -> Hashtbl.replace remap i rep) rest
      | _ -> ())
    groups;
  if Hashtbl.length remap = 0 then m
  else
    Treeutil.compact
      (Treeutil.retarget
         (fun t -> match Hashtbl.find_opt remap t with Some r -> r | None -> t)
         m)

let throw_to_goto (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (fun (b : Block.t) ->
         match (b.Block.term, b.Block.handler) with
         | Block.Throw v, Some h ->
             Block.with_stmts
               (Block.with_term b (Block.Goto h))
               (b.Block.stmts @ [ v ])
         | _ -> b)
       m.Meth.blocks)

(* ------------------------------------------------------------------ *)
(* Check elimination                                                    *)
(* ------------------------------------------------------------------ *)

(* Proven-fact tracking within a block over register-only trees. *)
module Facts = struct
  type t = (int * Node.t) list ref  (* hash, tree *)

  let create () : t = ref []

  let mem (t : t) tree =
    let h = Node.structural_hash tree in
    List.exists (fun (h', n) -> h = h' && Node.structural_equal n tree) !t

  let add (t : t) tree =
    if register_only tree && not (mem t tree) then
      t := (Node.structural_hash tree, tree) :: !t

  let kill_stores (t : t) stmt =
    let stored = Treeutil.stored_syms_of_tree stmt in
    if stored <> [] then
      t :=
        List.filter
          (fun (_, tree) ->
            not
              (List.exists
                 (fun s -> List.mem s (Treeutil.loaded_syms_of_tree tree))
                 stored))
          !t
end

(* A bounds fact is the pair (array tree, index tree), encoded as a
   two-child Mixedop so Facts can reuse structural equality. *)
let pair_key a i = Node.mk Opcode.Mixedop Types.Void [| a; i |]

let bounds_check_elim (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (fun (b : Block.t) ->
         let proven = Facts.create () in
         let stmts =
           List.filter_map
             (fun (s : Node.t) ->
               let keep =
                 match s.Node.op with
                 | Opcode.Arrayop Opcode.Bounds_check
                   when register_only s.Node.args.(0)
                        && register_only s.Node.args.(1) ->
                     let key = pair_key s.Node.args.(0) s.Node.args.(1) in
                     if Facts.mem proven key then None
                     else begin
                       Facts.add proven key;
                       Some s
                     end
                 | _ -> Some s
               in
               Facts.kill_stores proven s;
               keep)
             b.Block.stmts
         in
         Block.with_stmts b stmts)
       m.Meth.blocks)

let flag_covered_accesses ~get_key ~flag (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (fun (b : Block.t) ->
         let proven = Facts.create () in
         let process tree =
           (* flag nodes proven by earlier statements, then record the
              facts this statement establishes *)
           let tree' =
             Node.map_bottom_up
               (fun (n : Node.t) ->
                 match get_key n with
                 | Some key when Facts.mem proven key -> Node.with_flags n flag
                 | _ -> n)
               tree
           in
           Node.fold
             (fun () (n : Node.t) ->
               match get_key n with Some key -> Facts.add proven key | None -> ())
             () tree';
           tree'
         in
         let stmts =
           List.map
             (fun s ->
               let s' = process s in
               Facts.kill_stores proven s';
               s')
             b.Block.stmts
         in
         let term = Block.map_terminator_nodes process b.Block.term in
         { b with Block.stmts; term })
       m.Meth.blocks)

let loop_bounds_flags m =
  flag_covered_accesses m ~flag:Node.flag_no_bounds_check
    ~get_key:(fun (n : Node.t) ->
      match (n.Node.op, Array.length n.Node.args) with
      | Opcode.Arrayop Opcode.Bounds_check, _ | Opcode.Load, 2 ->
          if register_only n.Node.args.(0) && register_only n.Node.args.(1) then
            Some (pair_key n.Node.args.(0) n.Node.args.(1))
          else None
      | Opcode.Store, 3 ->
          if register_only n.Node.args.(0) && register_only n.Node.args.(1) then
            Some (pair_key n.Node.args.(0) n.Node.args.(1))
          else None
      | _ -> None)

let null_check_elim m =
  flag_covered_accesses m ~flag:Node.flag_no_null_check
    ~get_key:(fun (n : Node.t) ->
      match (n.Node.op, Array.length n.Node.args) with
      | Opcode.Load, (1 | 2) | Opcode.Store, (2 | 3) | Opcode.Arrayop _, _
      | Opcode.Synchronization _, 1 ->
          if Array.length n.Node.args > 0 && register_only n.Node.args.(0) then
            Some n.Node.args.(0)
          else None
      | _ -> None)

let compact_null_checks (m : Meth.t) =
  if Array.length m.Meth.blocks = 0 then m
  else begin
    let info = Treeutil.sym_info m in
    (* arguments proven non-null by a field access in the entry block and
       never reassigned *)
    let proven = Hashtbl.create 4 in
    List.iter
      (fun (s : Node.t) ->
        Node.fold
          (fun () (n : Node.t) ->
            match (n.Node.op, Array.length n.Node.args) with
            | (Opcode.Load, (1 | 2)) | (Opcode.Store, (2 | 3)) ->
                let recv = n.Node.args.(0) in
                if
                  recv.Node.op = Opcode.Load
                  && Array.length recv.Node.args = 0
                  && m.Meth.symbols.(recv.Node.sym).Tessera_il.Symbol.kind
                     = Tessera_il.Symbol.Arg
                  && info.Treeutil.stores.(recv.Node.sym) = 0
                then Hashtbl.replace proven recv.Node.sym ()
            | _ -> ())
          () s)
      m.Meth.blocks.(0).Block.stmts;
    if Hashtbl.length proven = 0 then m
    else
      Treeutil.map_method_nodes
        (Node.map_bottom_up (fun (n : Node.t) ->
             match (n.Node.op, Array.length n.Node.args) with
             | (Opcode.Load, (1 | 2)) | (Opcode.Store, (2 | 3)) ->
                 let recv = n.Node.args.(0) in
                 if
                   recv.Node.op = Opcode.Load
                   && Array.length recv.Node.args = 0
                   && Hashtbl.mem proven recv.Node.sym
                 then Node.with_flags n Node.flag_no_null_check
                 else n
             | _ -> n))
        m
  end

let monitor_pair_elim (m : Meth.t) =
  Meth.with_blocks m
    (Array.map
       (fun (b : Block.t) ->
         let proven = Facts.create () in
         let rec go = function
           | [] -> []
           | (s : Node.t) :: rest -> (
               let record () =
                 (match s.Node.op with
                 | Opcode.Synchronization _ when Array.length s.Node.args = 1 ->
                     Facts.add proven s.Node.args.(0)
                 | _ -> ());
                 Facts.kill_stores proven s
               in
               match (s.Node.op, rest) with
               | ( Opcode.Synchronization Opcode.Monitor_exit,
                   (next : Node.t) :: rest' )
                 when next.Node.op
                      = Opcode.Synchronization Opcode.Monitor_enter
                      && Array.length s.Node.args = 1
                      && Array.length next.Node.args = 1
                      && Node.structural_equal s.Node.args.(0)
                           next.Node.args.(0)
                      && register_only s.Node.args.(0)
                      && Facts.mem proven s.Node.args.(0) ->
                   go rest'
               | _ ->
                   record ();
                   s :: go rest)
         in
         Block.with_stmts b (go b.Block.stmts))
       m.Meth.blocks)
