(** Optimization levels and their compilation plans.

    Testarossa's five adaptive levels (Section 2 of the paper) each carry
    an ordered list of transformation applications: roughly 20 for cold,
    growing to more than 170 for scorching, drawn (with repeats — cleanup
    steps reapply earlier transformations) from the 58-entry catalogue.
    A compilation-plan modifier can remove applications but never adds or
    reorders them. *)

type level = Cold | Warm | Hot | Very_hot | Scorching

val levels : level array
val level_name : level -> string
val level_of_name : string -> level option
val level_index : level -> int
val level_of_index : int -> level

val plan : level -> int list
(** Catalogue indices in application order. *)

val plan_length : level -> int

val pp_level : Format.formatter -> level -> unit
