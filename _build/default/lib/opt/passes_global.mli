(** Whole-method and interprocedural transformations. *)

module Meth = Tessera_il.Meth
module Program = Tessera_il.Program

val remat_constants : Meth.t -> Meth.t
(** Rematerialization of constants: a temporary defined exactly once, in
    the entry block, by a constant, is replaced by the constant at its
    uses — recomputing beats keeping the value live (Section 4.1.1 of the
    paper discusses when this backfires, e.g. BigDecimal). *)

val global_copy_prop : Meth.t -> Meth.t
(** Forwards never-reassigned argument values through single-definition
    temporaries across the whole method. *)

val escape_analysis : Meth.t -> Meth.t
(** Flags allocations whose results provably never escape the method for
    stack allocation (cost-only flag; the allocation still happens in the
    value model). *)

val monitor_elision : Meth.t -> Meth.t
(** Flags monitor operations on provably thread-local objects. *)

val inline_trivial : program:Program.t -> Meth.t -> Meth.t
(** Replaces calls to tiny pure single-expression callees by the callee
    expression with arguments substituted. *)

val inline_general : program:Program.t -> Meth.t -> Meth.t
(** Inlines single-block callees at statement positions, splicing the
    callee body with renamed symbols. *)
