lib/features/features.mli: Format Tessera_il
