lib/features/features.ml: Array Format Hashtbl Int64 List Stdlib Tessera_il Tessera_opt
