(** Linear SVM solvers in the LIBLINEAR family.

    {!train_binary} is the dual coordinate descent method for
    L2-regularized L1-loss (hinge) support vector classification
    (Hsieh et al., ICML 2008) — LIBLINEAR's [L2R_L1LOSS_SVC_DUAL].
    {!train_ovr} builds a multiclass model by one-vs-rest. *)

type params = {
  c : float;  (** misclassification cost; the paper uses C = 10 *)
  eps : float;  (** stopping tolerance on projected gradients *)
  max_iter : int;  (** outer passes over the data *)
  seed : int64;  (** permutation seed *)
}

val default_params : params
(** [c = 10.0], matching the paper's empirically selected value. *)

val train_binary : ?params:params -> Sparse.t array -> bool array -> float array
(** Weight vector for a +1/-1 problem ([true] = positive). *)

val train_ovr : ?params:params -> Problem.t -> Model.t

val iterations_used : unit -> int
(** Outer iterations consumed by the most recent [train_binary] call
    (diagnostics for convergence tests). *)
