(** Trained linear multiclass models.

    A model is the paper's [p x L] real-valued weight matrix: one weight
    vector per class over the p feature dimensions; prediction is an
    argmax of decision values and its cost is proportional to the matrix
    size.  Serialization follows LIBLINEAR's model text format. *)

type t = {
  solver : string;  (** e.g. "L2R_L1LOSS_SVC_DUAL" or "MCSVM_CS" *)
  labels : int array;
  n_features : int;
  weights : float array array;  (** [weights.(class).(feature)] *)
}

val decision_values : t -> Sparse.t -> float array

val predict : t -> Sparse.t -> int
(** Returns the predicted {e label} (not class index). *)

val to_string : t -> string
val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val save : t -> string -> unit
val load : string -> t

val equal : t -> t -> bool
