type t = {
  x : Sparse.t array;
  y : int array;
  labels : int array;
  n_features : int;
}

let make ?n_features x raw_labels =
  if Array.length x <> Array.length raw_labels then
    invalid_arg "Problem.make: length mismatch";
  let table = Hashtbl.create 16 in
  let labels = ref [] in
  let y =
    Array.map
      (fun raw ->
        match Hashtbl.find_opt table raw with
        | Some c -> c
        | None ->
            let c = Hashtbl.length table in
            Hashtbl.add table raw c;
            labels := raw :: !labels;
            c)
      raw_labels
  in
  let n_features =
    match n_features with
    | Some n -> n
    | None -> 1 + Array.fold_left (fun acc v -> max acc (Sparse.max_index v)) (-1) x
  in
  { x; y; labels = Array.of_list (List.rev !labels); n_features }

let n_instances t = Array.length t.x
let n_classes t = Array.length t.labels

let label_of_class t c =
  if c < 0 || c >= Array.length t.labels then invalid_arg "label_of_class";
  t.labels.(c)

let class_of_label t label =
  let found = ref None in
  Array.iteri (fun c l -> if l = label && !found = None then found := Some c) t.labels;
  !found

let subset t idxs =
  {
    t with
    x = Array.map (fun i -> t.x.(i)) idxs;
    y = Array.map (fun i -> t.y.(i)) idxs;
  }
