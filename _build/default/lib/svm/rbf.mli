(** Kernel SVM with the radial basis function kernel, trained by a
    working-pair SMO — the non-linear alternative evaluated in Section 6
    of the paper.  Training can be quicker than the linear solver on small
    problems, but prediction must evaluate the kernel against every
    support vector, which is why the paper measured predictions up to
    four orders of magnitude slower than the linear model's. *)

type params = {
  c : float;
  gamma : float;  (** K(x,y) = exp (-gamma * ||x-y||^2) *)
  eps : float;
  max_passes : int;
  seed : int64;
}

val default_params : params

type model = {
  gamma : float;
  labels : int array;
  (* one binary machine per class (one-vs-rest): support vectors with
     signed coefficients and an intercept *)
  machines : (Sparse.t array * float array * float) array;
}

val train : ?params:params -> Problem.t -> model

val predict : model -> Sparse.t -> int
(** Predicted label. *)

val decision_values : model -> Sparse.t -> float array

val support_vector_count : model -> int
