(** Crammer–Singer multiclass SVM trained by a sequential dual method
    (Keerthi et al., KDD 2008) — LIBLINEAR's [MCSVM_CS], the solver the
    paper's models used.  Each outer pass visits examples in random order
    and performs an exact two-coordinate update on the most violating
    class pair of the example's dual subproblem. *)

val train : ?params:Linear.params -> Problem.t -> Model.t
