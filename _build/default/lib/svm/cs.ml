module Prng = Tessera_util.Prng

(* Crammer-Singer dual:
     min 1/2 Σ_m ||w_m||² + Σ_i ξ_i
     s.t. w_{y_i}·x_i - w_m·x_i >= 1 - δ(y_i,m) - ξ_i
   Dual variables α_i^m with Σ_m α_i^m = 0 and α_i^m <= C·δ(m = y_i).
   w_m = Σ_i α_i^m x_i.

   Two-coordinate update for example i on the pair (y_i, m'): moving t
   from class m' to class y_i changes the objective by
     t^2 * ||x_i||^2 - t * (g_m' - g_y)
   where g_m = w_m·x_i + 1 - δ(m, y_i).  The optimal unconstrained step is
   t = violation / (2||x_i||²), clipped so α_i^{y_i} stays <= C. *)

let train ?(params = Linear.default_params) (p : Problem.t) =
  let n = Array.length p.Problem.x in
  let k = Problem.n_classes p in
  if k < 2 then invalid_arg "Cs.train: need at least two classes";
  let nf = max 1 p.Problem.n_features in
  let w = Array.init k (fun _ -> Array.make nf 0.0) in
  (* only α_i^{y_i} needs tracking: the box constraint binds there *)
  let alpha_y = Array.make n 0.0 in
  let order = Array.init n Fun.id in
  let rng = Prng.create params.Linear.seed in
  let qii = Array.map Sparse.sq_norm p.Problem.x in
  let iter = ref 0 in
  let converged = ref false in
  while (not !converged) && !iter < params.Linear.max_iter do
    incr iter;
    Prng.shuffle rng order;
    let max_violation = ref 0.0 in
    Array.iter
      (fun i ->
        if qii.(i) > 0.0 then begin
          let xi = p.Problem.x.(i) in
          let yi = p.Problem.y.(i) in
          (* most violating competitor class *)
          let best_m = ref (-1) in
          let best_score = ref neg_infinity in
          for m = 0 to k - 1 do
            if m <> yi then begin
              let s = Sparse.dot xi w.(m) in
              if s > !best_score then begin
                best_score := s;
                best_m := m
              end
            end
          done;
          let s_y = Sparse.dot xi w.(yi) in
          let violation = !best_score +. 1.0 -. s_y in
          if violation > 0.0 || alpha_y.(i) > 0.0 then begin
            (* optimal step, clipped to keep α_i^{y_i} within [?, C];
               negative steps (shrinking α) are allowed down to the point
               where α_i^{y_i} = 0 *)
            let t_unc = violation /. (2.0 *. qii.(i)) in
            let t =
              Float.max (-.alpha_y.(i)) (Float.min t_unc (params.Linear.c -. alpha_y.(i)))
            in
            if Float.abs t > 1e-12 then begin
              alpha_y.(i) <- alpha_y.(i) +. t;
              Sparse.add_scaled w.(yi) xi t;
              Sparse.add_scaled w.(!best_m) xi (-.t);
              if violation > !max_violation then max_violation := violation
            end
          end
        end)
      order;
    if !max_violation < params.Linear.eps then converged := true
  done;
  {
    Model.solver = "MCSVM_CS";
    labels = Array.copy p.Problem.labels;
    n_features = p.Problem.n_features;
    weights = w;
  }
