module Prng = Tessera_util.Prng

let accuracy ~predict xs labels =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Metrics.accuracy: empty set";
  let correct = ref 0 in
  Array.iteri (fun i x -> if predict x = labels.(i) then incr correct) xs;
  float_of_int !correct /. float_of_int n

let kfold ~seed ~k n =
  if k < 2 || k > n then invalid_arg "Metrics.kfold";
  let order = Array.init n Fun.id in
  Prng.shuffle (Prng.create seed) order;
  List.init k (fun fold ->
      let test = ref [] and train = ref [] in
      Array.iteri
        (fun pos idx ->
          if pos mod k = fold then test := idx :: !test else train := idx :: !train)
        order;
      (Array.of_list (List.rev !train), Array.of_list (List.rev !test)))

let cross_validate ?(seed = 99L) ~k ~train (p : Problem.t) =
  let folds = kfold ~seed ~k (Problem.n_instances p) in
  let accs =
    List.map
      (fun (tr, te) ->
        let model = train (Problem.subset p tr) in
        let te_x = Array.map (fun i -> p.Problem.x.(i)) te in
        let te_y =
          Array.map (fun i -> Problem.label_of_class p p.Problem.y.(i)) te
        in
        accuracy ~predict:(Model.predict model) te_x te_y)
      folds
  in
  List.fold_left ( +. ) 0.0 accs /. float_of_int (List.length accs)
