lib/svm/linear.mli: Model Problem Sparse
