lib/svm/rbf.ml: Array Float Int64 List Problem Sparse Tessera_util
