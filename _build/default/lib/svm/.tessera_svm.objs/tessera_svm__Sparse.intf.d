lib/svm/sparse.mli: Format
