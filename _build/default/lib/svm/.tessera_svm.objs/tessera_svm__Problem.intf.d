lib/svm/problem.mli: Sparse
