lib/svm/cs.ml: Array Float Fun Linear Model Problem Sparse Tessera_util
