lib/svm/explain.ml: Array Float Format List Model
