lib/svm/cs.mli: Linear Model Problem
