lib/svm/linear.ml: Array Float Fun Int64 Model Problem Sparse Tessera_util
