lib/svm/model.ml: Array Buffer Fun List Printf Sparse String
