lib/svm/problem.ml: Array Hashtbl List Sparse
