lib/svm/rbf.mli: Problem Sparse
