lib/svm/metrics.ml: Array Fun List Model Problem Tessera_util
