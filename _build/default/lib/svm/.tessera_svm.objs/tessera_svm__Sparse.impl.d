lib/svm/sparse.ml: Array Format List
