lib/svm/model.mli: Sparse
