lib/svm/metrics.mli: Model Problem Sparse
