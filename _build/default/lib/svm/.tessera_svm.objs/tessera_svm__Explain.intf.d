lib/svm/explain.mli: Format Model
