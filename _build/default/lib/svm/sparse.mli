(** Sparse feature vectors: index/value pairs with strictly increasing
    indices, the representation of LIBLINEAR's data format where
    zero-valued components are omitted. *)

type t = (int * float) array

val of_dense : float array -> t
(** Drops zero components. *)

val to_dense : int -> t -> float array

val of_list : (int * float) list -> t
(** Sorts and validates (duplicate indices rejected). *)

val dot : t -> float array -> float
(** Sparse · dense; indices beyond the dense length contribute zero. *)

val add_scaled : float array -> t -> float -> unit
(** [add_scaled w x s]: [w += s * x]. *)

val sq_norm : t -> float

val sq_dist : t -> t -> float
(** Squared Euclidean distance (for RBF kernels). *)

val max_index : t -> int
(** -1 for the empty vector. *)

val nnz : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
