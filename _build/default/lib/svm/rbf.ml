module Prng = Tessera_util.Prng

type params = {
  c : float;
  gamma : float;
  eps : float;
  max_passes : int;
  seed : int64;
}

let default_params =
  { c = 10.0; gamma = 0.5; eps = 1e-3; max_passes = 20; seed = 11L }

type model = {
  gamma : float;
  labels : int array;
  machines : (Sparse.t array * float array * float) array;
}

(* Simplified SMO (Platt; simplified heuristic pair selection as in the
   Stanford CS229 variant): optimize pairs of Lagrange multipliers until
   no KKT violations survive a full pass. *)
let smo ~(params : params) x (y : float array) =
  let n = Array.length x in
  let kmat =
    Array.init n (fun i ->
        Array.init n (fun j ->
            exp (-.params.gamma *. Sparse.sq_dist x.(i) x.(j))))
  in
  let alpha = Array.make n 0.0 in
  let b = ref 0.0 in
  let f i =
    let acc = ref !b in
    for j = 0 to n - 1 do
      if alpha.(j) <> 0.0 then acc := !acc +. (alpha.(j) *. y.(j) *. kmat.(i).(j))
    done;
    !acc
  in
  let rng = Prng.create params.seed in
  let passes = ref 0 in
  while !passes < params.max_passes do
    let changed = ref 0 in
    for i = 0 to n - 1 do
      let ei = f i -. y.(i) in
      if
        (y.(i) *. ei < -.params.eps && alpha.(i) < params.c)
        || (y.(i) *. ei > params.eps && alpha.(i) > 0.0)
      then begin
        let j = (i + 1 + Prng.int rng (max 1 (n - 1))) mod n in
        if j <> i then begin
          let ej = f j -. y.(j) in
          let ai_old = alpha.(i) and aj_old = alpha.(j) in
          let lo, hi =
            if y.(i) <> y.(j) then
              (Float.max 0.0 (aj_old -. ai_old), Float.min params.c (params.c +. aj_old -. ai_old))
            else
              (Float.max 0.0 (ai_old +. aj_old -. params.c), Float.min params.c (ai_old +. aj_old))
          in
          if hi -. lo > 1e-12 then begin
            let eta = (2.0 *. kmat.(i).(j)) -. kmat.(i).(i) -. kmat.(j).(j) in
            if eta < 0.0 then begin
              let aj = aj_old -. (y.(j) *. (ei -. ej) /. eta) in
              let aj = Float.max lo (Float.min hi aj) in
              if Float.abs (aj -. aj_old) > 1e-7 then begin
                let ai = ai_old +. (y.(i) *. y.(j) *. (aj_old -. aj)) in
                alpha.(i) <- ai;
                alpha.(j) <- aj;
                let b1 =
                  !b -. ei
                  -. (y.(i) *. (ai -. ai_old) *. kmat.(i).(i))
                  -. (y.(j) *. (aj -. aj_old) *. kmat.(i).(j))
                in
                let b2 =
                  !b -. ej
                  -. (y.(i) *. (ai -. ai_old) *. kmat.(i).(j))
                  -. (y.(j) *. (aj -. aj_old) *. kmat.(j).(j))
                in
                b :=
                  if ai > 0.0 && ai < params.c then b1
                  else if aj > 0.0 && aj < params.c then b2
                  else (b1 +. b2) /. 2.0;
                incr changed
              end
            end
          end
        end
      end
    done;
    if !changed = 0 then passes := params.max_passes else incr passes
  done;
  (alpha, !b)

let train ?(params = default_params) (p : Problem.t) =
  let k = Problem.n_classes p in
  let machines =
    Array.init
      (if k = 2 then 1 else k)
      (fun cls ->
        let y =
          Array.map (fun c -> if c = cls then 1.0 else -1.0) p.Problem.y
        in
        let alpha, b =
          smo
            ~params:{ params with seed = Int64.add params.seed (Int64.of_int cls) }
            p.Problem.x y
        in
        (* keep only support vectors *)
        let svs = ref [] and coefs = ref [] in
        Array.iteri
          (fun i a ->
            if a > 1e-9 then begin
              svs := p.Problem.x.(i) :: !svs;
              coefs := (a *. y.(i)) :: !coefs
            end)
          alpha;
        (Array.of_list (List.rev !svs), Array.of_list (List.rev !coefs), b))
      ;
  in
  { gamma = params.gamma; labels = Array.copy p.Problem.labels; machines }

let decision_values m x =
  Array.map
    (fun (svs, coefs, b) ->
      let acc = ref b in
      Array.iteri
        (fun i sv -> acc := !acc +. (coefs.(i) *. exp (-.m.gamma *. Sparse.sq_dist sv x)))
        svs;
      !acc)
    m.machines

let predict m x =
  let dv = decision_values m x in
  if Array.length m.machines = 1 && Array.length m.labels = 2 then
    if dv.(0) >= 0.0 then m.labels.(0) else m.labels.(1)
  else begin
    let best = ref 0 in
    Array.iteri (fun i v -> if v > dv.(!best) then best := i) dv;
    m.labels.(!best)
  end

let support_vector_count m =
  Array.fold_left (fun acc (svs, _, _) -> acc + Array.length svs) 0 m.machines
