(** Model introspection: which features drive each class of a linear
    model.

    The learned model is a p×L weight matrix; inspecting the largest
    weights per class is the standard way to sanity-check what a linear
    classifier learned (e.g. that loop-related features drive the classes
    whose modifiers keep loop transformations). *)

type contribution = { feature : int; weight : float }

val top_features : ?k:int -> Model.t -> class_index:int -> contribution list
(** The [k] features with the largest |weight| for a class, sorted by
    |weight| descending (default k = 5). *)

val report :
  ?k:int ->
  ?feature_name:(int -> string) ->
  Format.formatter ->
  Model.t ->
  unit
(** Per-class summary.  [feature_name] renders feature indices (pass
    [Tessera_features.Features.component_name] for Tessera models). *)

val weight_density : Model.t -> float
(** Fraction of non-zero entries in the weight matrix. *)
