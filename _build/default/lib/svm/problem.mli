(** A classification problem: instances, labels, and the label ↔ class
    index mapping (labels can be any positive ints, as in LIBLINEAR's
    [1, 2^31 - 1] class-label space). *)

type t = private {
  x : Sparse.t array;
  y : int array;  (** class indices, 0-based, dense *)
  labels : int array;  (** [labels.(class_index)] = original label *)
  n_features : int;
}

val make : ?n_features:int -> Sparse.t array -> int array -> t
(** [make x raw_labels]: class indices are assigned in first-appearance
    order of the raw labels.  [n_features] defaults to 1 + the largest
    feature index present. *)

val n_instances : t -> int
val n_classes : t -> int

val label_of_class : t -> int -> int
val class_of_label : t -> int -> int option

val subset : t -> int array -> t
(** Instances at the given positions (keeps the full label table so class
    indices remain comparable across folds). *)
