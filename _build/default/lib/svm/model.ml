type t = {
  solver : string;
  labels : int array;
  n_features : int;
  weights : float array array;
}

let decision_values t x = Array.map (fun w -> Sparse.dot x w) t.weights

let predict t x =
  let dv = decision_values t x in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > dv.(!best) then best := i) dv;
  (* binary one-vs-rest models with a single weight vector: positive
     decision value means the first label *)
  if Array.length t.weights = 1 && Array.length t.labels = 2 then
    if dv.(0) >= 0.0 then t.labels.(0) else t.labels.(1)
  else t.labels.(!best)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "solver_type %s\n" t.solver);
  Buffer.add_string buf (Printf.sprintf "nr_class %d\n" (Array.length t.labels));
  Buffer.add_string buf "label";
  Array.iter (fun l -> Buffer.add_string buf (Printf.sprintf " %d" l)) t.labels;
  Buffer.add_string buf "\n";
  Buffer.add_string buf (Printf.sprintf "nr_feature %d\n" t.n_features);
  Buffer.add_string buf "bias -1\n";
  Buffer.add_string buf "w\n";
  (* LIBLINEAR layout: one line per feature, one column per class *)
  for f = 0 to t.n_features - 1 do
    Array.iter
      (fun w -> Buffer.add_string buf (Printf.sprintf "%.17g " w.(f)))
      t.weights;
    Buffer.add_string buf "\n"
  done;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let solver = ref "" and nr_class = ref 0 and nr_feature = ref 0 in
  let labels = ref [||] in
  let rec header = function
    | [] -> failwith "Model.of_string: missing w section"
    | line :: rest -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "solver_type"; v ] ->
            solver := v;
            header rest
        | "label" :: ls ->
            labels := Array.of_list (List.map int_of_string (List.filter (fun x -> x <> "") ls));
            header rest
        | [ "nr_class"; v ] ->
            nr_class := int_of_string v;
            header rest
        | [ "nr_feature"; v ] ->
            nr_feature := int_of_string v;
            header rest
        | [ "bias"; _ ] -> header rest
        | [ "w" ] | [ "w"; "" ] -> rest
        | _ -> failwith (Printf.sprintf "Model.of_string: bad header line %S" line))
  in
  let body = header lines in
  if Array.length !labels <> !nr_class then
    failwith "Model.of_string: label count mismatch";
  let ncols = if !nr_class = 2 then 1 else !nr_class in
  (* binary models may store a single vector; detect from the first row *)
  let rows =
    body
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun l ->
           String.split_on_char ' ' (String.trim l)
           |> List.filter (fun x -> x <> "")
           |> List.map float_of_string)
  in
  if List.length rows <> !nr_feature then
    failwith
      (Printf.sprintf "Model.of_string: expected %d weight rows, got %d"
         !nr_feature (List.length rows));
  let ncols =
    match rows with row :: _ -> List.length row | [] -> ncols
  in
  let weights = Array.init ncols (fun _ -> Array.make !nr_feature 0.0) in
  List.iteri
    (fun f row ->
      List.iteri (fun c v -> weights.(c).(f) <- v) row)
    rows;
  { solver = !solver; labels = !labels; n_features = !nr_feature; weights }

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

let equal a b =
  a.solver = b.solver && a.labels = b.labels && a.n_features = b.n_features
  && a.weights = b.weights
