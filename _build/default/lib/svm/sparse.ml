type t = (int * float) array

let of_dense arr =
  let out = ref [] in
  Array.iteri (fun i v -> if v <> 0.0 then out := (i, v) :: !out) arr;
  Array.of_list (List.rev !out)

let to_dense n t =
  let d = Array.make n 0.0 in
  Array.iter (fun (i, v) -> if i < n then d.(i) <- v) t;
  d

let of_list l =
  let arr = Array.of_list l in
  Array.sort (fun (a, _) (b, _) -> compare a b) arr;
  Array.iteri
    (fun k (i, _) ->
      if i < 0 then invalid_arg "Sparse.of_list: negative index";
      if k > 0 && fst arr.(k - 1) = i then
        invalid_arg "Sparse.of_list: duplicate index")
    arr;
  arr

let dot t w =
  let n = Array.length w in
  let acc = ref 0.0 in
  Array.iter (fun (i, v) -> if i < n then acc := !acc +. (v *. w.(i))) t;
  !acc

let add_scaled w t s =
  let n = Array.length w in
  Array.iter (fun (i, v) -> if i < n then w.(i) <- w.(i) +. (s *. v)) t

let sq_norm t = Array.fold_left (fun acc (_, v) -> acc +. (v *. v)) 0.0 t

let sq_dist a b =
  let acc = ref 0.0 in
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !i < na && (!j >= nb || fst a.(!i) < fst b.(!j)) then begin
      let v = snd a.(!i) in
      acc := !acc +. (v *. v);
      incr i
    end
    else if !j < nb && (!i >= na || fst b.(!j) < fst a.(!i)) then begin
      let v = snd b.(!j) in
      acc := !acc +. (v *. v);
      incr j
    end
    else begin
      let v = snd a.(!i) -. snd b.(!j) in
      acc := !acc +. (v *. v);
      incr i;
      incr j
    end
  done;
  !acc

let max_index t = Array.fold_left (fun acc (i, _) -> max acc i) (-1) t

let nnz = Array.length

let equal (a : t) b = a = b

let pp fmt t =
  Array.iter (fun (i, v) -> Format.fprintf fmt "%d:%g " i v) t
