type contribution = { feature : int; weight : float }

let top_features ?(k = 5) (m : Model.t) ~class_index =
  if class_index < 0 || class_index >= Array.length m.Model.weights then
    invalid_arg "Explain.top_features: class index out of range";
  let w = m.Model.weights.(class_index) in
  let all =
    Array.to_list (Array.mapi (fun feature weight -> { feature; weight }) w)
  in
  all
  |> List.filter (fun c -> c.weight <> 0.0)
  |> List.sort (fun a b -> compare (Float.abs b.weight) (Float.abs a.weight))
  |> List.filteri (fun i _ -> i < k)

let report ?(k = 5) ?(feature_name = string_of_int) fmt (m : Model.t) =
  Format.fprintf fmt "model %s: %d classes x %d features@." m.Model.solver
    (Array.length m.Model.weights) m.Model.n_features;
  Array.iteri
    (fun ci label ->
      if ci < Array.length m.Model.weights then begin
        Format.fprintf fmt "  label %-6d:" label;
        List.iter
          (fun c ->
            Format.fprintf fmt " %s=%+.3f" (feature_name c.feature) c.weight)
          (top_features ~k m ~class_index:ci);
        Format.fprintf fmt "@."
      end)
    m.Model.labels

let weight_density (m : Model.t) =
  let nz = ref 0 and total = ref 0 in
  Array.iter
    (fun w ->
      Array.iter
        (fun x ->
          incr total;
          if x <> 0.0 then incr nz)
        w)
    m.Model.weights;
  if !total = 0 then 0.0 else float_of_int !nz /. float_of_int !total
