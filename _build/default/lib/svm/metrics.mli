(** Evaluation utilities: accuracy and the cross-validation splits used in
    Section 6 ("merging of intermediate data sets allows ... cross-
    validation and leave-one-out cross-validation"). *)

val accuracy : predict:(Sparse.t -> int) -> Sparse.t array -> int array -> float
(** Fraction of instances whose predicted label matches. *)

val kfold : seed:int64 -> k:int -> int -> (int array * int array) list
(** [kfold ~seed ~k n] splits positions [0..n-1] into [k]
    (train, test) partitions. *)

val cross_validate :
  ?seed:int64 ->
  k:int ->
  train:(Problem.t -> Model.t) ->
  Problem.t ->
  float
(** Mean accuracy over the folds. *)
