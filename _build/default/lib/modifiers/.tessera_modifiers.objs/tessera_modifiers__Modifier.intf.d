lib/modifiers/modifier.mli: Format Tessera_util
