lib/modifiers/guided.ml: Hashtbl Modifier Option Tessera_util
