lib/modifiers/guided.mli: Modifier
