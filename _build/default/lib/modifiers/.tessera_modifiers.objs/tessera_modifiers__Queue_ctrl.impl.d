lib/modifiers/queue_ctrl.ml: Array Hashtbl Modifier Tessera_util
