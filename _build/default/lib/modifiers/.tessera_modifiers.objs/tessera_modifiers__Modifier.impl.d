lib/modifiers/modifier.ml: Format List String Tessera_opt Tessera_util
