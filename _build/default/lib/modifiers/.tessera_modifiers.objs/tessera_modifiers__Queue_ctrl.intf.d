lib/modifiers/queue_ctrl.mli: Modifier
