module Bitset = Tessera_util.Bitset
module Prng = Tessera_util.Prng

type t = Bitset.t

let width = Tessera_opt.Catalog.count

let null = Bitset.create width

let is_null m = Bitset.popcount m = 0

let disables m i = Bitset.get m i

let enabled_fun m i = not (Bitset.get m i)

let disabled_count = Bitset.popcount

let of_disabled idxs =
  let b = Bitset.create width in
  List.iter (fun i -> Bitset.set b i true) idxs;
  b

let disabled_indices m =
  List.rev (Bitset.fold (fun i set acc -> if set then i :: acc else acc) m [])

let random rng ~density =
  let b = Bitset.create width in
  for i = 0 to width - 1 do
    Bitset.set b i (Prng.bernoulli rng density)
  done;
  b

let progressive_probability ~i ~l =
  if l <= 0 then invalid_arg "Modifier.progressive_probability: l <= 0";
  if i < 0 || i > l then invalid_arg "Modifier.progressive_probability: i out of range";
  float_of_int i *. 0.25 /. float_of_int l

let progressive rng ~i ~l = random rng ~density:(progressive_probability ~i ~l)

let equal = Bitset.equal
let compare = Bitset.compare
let hash = Bitset.hash
let to_string = Bitset.to_string
let of_string s =
  if String.length s <> width then invalid_arg "Modifier.of_string: bad width";
  Bitset.of_string s

let to_bits = Bitset.to_int64_le
let of_bits v = Bitset.of_int64_le ~width v

let pp fmt m = Format.pp_print_string fmt (to_string m)
