(** Compilation-plan modifiers (Section 5 of the paper).

    A modifier is a sequence of 58 bits — one per controllable
    transformation in {!Tessera_opt.Catalog} — where a {e set} bit
    {e disables} the transformation.  Modifiers remove transformations
    from a plan; they never add or reorder them. *)

type t

val width : int
(** = [Tessera_opt.Catalog.count] = 58. *)

val null : t
(** The null modifier: disables nothing, i.e. the original Testarossa
    compilation plan. *)

val is_null : t -> bool

val disables : t -> int -> bool
(** [disables m i]: transformation [i] is suppressed. *)

val enabled_fun : t -> int -> bool
(** The predicate handed to the pass manager: [fun i -> not (disables m i)]. *)

val disabled_count : t -> int

val of_disabled : int list -> t
(** Build from a list of disabled transformation indices. *)

val disabled_indices : t -> int list

val random : Tessera_util.Prng.t -> density:float -> t
(** Each bit disabled independently with probability [density] — the pure
    randomized search with aggressive exploration. *)

val progressive : Tessera_util.Prng.t -> i:int -> l:int -> t
(** The progressive randomized search of Eq. (1): the i-th modifier
    disables each transformation with probability
    [D_i = i * 0.25 / L], evolving from 0 to 0.25 over a collection run. *)

val progressive_probability : i:int -> l:int -> float
(** [D_i] itself, exposed for tests and documentation. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** 58-character "0"/"1" string, bit 0 first (1 = disabled). *)

val of_string : string -> t

val to_bits : t -> int64
(** Packed little-endian (58 < 64 bits). *)

val of_bits : int64 -> t

val pp : Format.formatter -> t -> unit
