module Prng = Tessera_util.Prng
module Bitset = Tessera_util.Bitset

type params = {
  mutation_rate : float;
  restart_rate : float;
  restart_density : float;
  max_proposals_per_method : int;
}

let default_params =
  {
    mutation_rate = 0.05;
    restart_rate = 0.1;
    restart_density = 0.2;
    max_proposals_per_method = 200;
  }

type meth_state = {
  mutable best : (Modifier.t * float) option;
  mutable calls : int;  (** total [next] calls, for the every-third-null rule *)
  mutable proposals : int;
  tried : (int64, unit) Hashtbl.t;
}

type t = {
  params : params;
  rng : Prng.t;
  per_meth : (int, meth_state) Hashtbl.t;
  mutable total_proposals : int;
}

let create ?(params = default_params) ~seed () =
  { params; rng = Prng.create seed; per_meth = Hashtbl.create 64; total_proposals = 0 }

let state t key =
  match Hashtbl.find_opt t.per_meth key with
  | Some s -> s
  | None ->
      let s = { best = None; calls = 0; proposals = 0; tried = Hashtbl.create 32 } in
      Hashtbl.add t.per_meth key s;
      s

let mutate t base =
  let m = Bitset.copy base in
  for i = 0 to Modifier.width - 1 do
    if Prng.bernoulli t.rng t.params.mutation_rate then
      Bitset.set m i (not (Bitset.get m i))
  done;
  (* force at least one flip so the proposal differs from its parent *)
  let i = Prng.int t.rng Modifier.width in
  Bitset.set m i (not (Bitset.get m i));
  Modifier.of_string (Bitset.to_string m)

let propose t s =
  let base =
    if Prng.bernoulli t.rng t.params.restart_rate || s.best = None then
      Modifier.random t.rng ~density:t.params.restart_density
    else mutate t (Bitset.of_string (Modifier.to_string (fst (Option.get s.best))))
  in
  (* never repeat a modifier for the same method; mutate until fresh *)
  let rec fresh m budget =
    if budget = 0 then None
    else if Hashtbl.mem s.tried (Modifier.to_bits m) then fresh (mutate t (Bitset.of_string (Modifier.to_string m))) (budget - 1)
    else Some m
  in
  fresh base 32

let next t ~method_key =
  let s = state t method_key in
  s.calls <- s.calls + 1;
  if s.calls mod 3 = 0 then Some Modifier.null
  else if s.proposals >= t.params.max_proposals_per_method then None
  else
    match propose t s with
    | None -> None
    | Some m ->
        Hashtbl.replace s.tried (Modifier.to_bits m) ();
        s.proposals <- s.proposals + 1;
        t.total_proposals <- t.total_proposals + 1;
        Some m

let feedback t ~method_key m v =
  let s = state t method_key in
  match s.best with
  | Some (_, best_v) when best_v <= v -> ()
  | _ -> s.best <- Some (m, v)

let best t ~method_key =
  match Hashtbl.find_opt t.per_meth method_key with
  | None -> None
  | Some s -> s.best

let proposals_made t = t.total_proposals
