(** Heuristic-guided modifier search — the future work of Section 5.

    The paper's two searches (pure random, Eq.-1 progressive) are blind:
    "a heuristic-based search that evaluates the performance for modifiers
    during data collection may focus the search on promising regions
    within the space of possible modifiers.  The implementation of such a
    search is left for future work."  This module implements it as
    per-method stochastic hill climbing:

    - each method starts from the null modifier;
    - the collector feeds back the ranking value (Eq. 2) observed for
      every (method, modifier) experiment;
    - the next proposal mutates the best modifier seen so far for that
      method, flipping each bit with a small probability (plus one forced
      flip, so proposals always differ);
    - occasionally a fully random restart is proposed to escape local
      minima.

    Proposals never repeat for a method, matching the strategy-control
    rule that a method is never compiled twice with the same modifier. *)

type t

type params = {
  mutation_rate : float;  (** per-bit flip probability when mutating *)
  restart_rate : float;  (** probability of a random restart proposal *)
  restart_density : float;  (** disable density of restart proposals *)
  max_proposals_per_method : int;  (** exploration budget per method *)
}

val default_params : params

val create : ?params:params -> seed:int64 -> unit -> t

val next : t -> method_key:int -> Modifier.t option
(** Next modifier to try for the method; [None] once the per-method
    budget is exhausted.  Every third call still yields the null modifier
    so the original plan keeps being observed. *)

val feedback : t -> method_key:int -> Modifier.t -> float -> unit
(** [feedback t ~method_key m v] reports the Eq.-2 ranking value [v]
    (smaller is better) measured for modifier [m] on this method. *)

val best : t -> method_key:int -> (Modifier.t * float) option
(** Best (modifier, value) observed so far for a method. *)

val proposals_made : t -> int
