module Triggers = Tessera_jit.Triggers

let amortization = 2.5

let value (r : Record.t) =
  if r.Record.invocations <= 0 then
    invalid_arg "Rank_value.value: record with no invocations";
  let avg_run =
    Int64.to_float r.Record.running_cycles /. float_of_int r.Record.invocations
  in
  let cls = Triggers.loop_class_of_features r.Record.features in
  let t_h =
    float_of_int (Triggers.trigger r.Record.level cls) *. amortization
  in
  avg_run +. (float_of_int r.Record.compile_cycles /. t_h)
