module Features = Tessera_features.Features
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan
module Codec = Tessera_util.Codec

type t = {
  sig_id : int;
  features : Features.t;
  level : Plan.level;
  modifier : Modifier.t;
  compile_cycles : int;
  invocations : int;
  running_cycles : int64;
  discarded_samples : int;
}

let make ~sig_id ~features ~level ~modifier ~compile_cycles =
  {
    sig_id;
    features;
    level;
    modifier;
    compile_cycles;
    invocations = 0;
    running_cycles = 0L;
    discarded_samples = 0;
  }

let add_sample t ~cycles ~valid =
  if valid then
    {
      t with
      invocations = t.invocations + 1;
      running_cycles = Int64.add t.running_cycles cycles;
    }
  else { t with discarded_samples = t.discarded_samples + 1 }

let encode t buf =
  Codec.write_varint buf t.sig_id;
  Codec.write_varint buf (Plan.level_index t.level);
  Codec.write_i64 buf (Modifier.to_bits t.modifier);
  Codec.write_varint buf t.compile_cycles;
  Codec.write_varint buf t.invocations;
  Codec.write_i64 buf t.running_cycles;
  Codec.write_varint buf t.discarded_samples;
  (* dense feature vector; the values are small, varints keep it compact *)
  Array.iter (fun v -> Codec.write_varint buf v) (Features.to_array t.features)

let decode r =
  let sig_id = Codec.read_varint ~what:"sig_id" r in
  let level = Plan.level_of_index (Codec.read_varint ~what:"level" r) in
  let modifier = Modifier.of_bits (Codec.read_i64 ~what:"modifier" r) in
  let compile_cycles = Codec.read_varint ~what:"compile_cycles" r in
  let invocations = Codec.read_varint ~what:"invocations" r in
  let running_cycles = Codec.read_i64 ~what:"running_cycles" r in
  let discarded_samples = Codec.read_varint ~what:"discarded" r in
  let features =
    Features.of_array
      (Array.init Features.dim (fun _ -> Codec.read_varint ~what:"feature" r))
  in
  {
    sig_id;
    features;
    level;
    modifier;
    compile_cycles;
    invocations;
    running_cycles;
    discarded_samples;
  }

let equal a b =
  a.sig_id = b.sig_id
  && Features.equal a.features b.features
  && a.level = b.level
  && Modifier.equal a.modifier b.modifier
  && a.compile_cycles = b.compile_cycles
  && a.invocations = b.invocations
  && Int64.equal a.running_cycles b.running_cycles
  && a.discarded_samples = b.discarded_samples

let pp fmt t =
  Format.fprintf fmt
    "{sig=%d level=%s mod=%s C=%d I=%d R=%Ld discarded=%d}" t.sig_id
    (Plan.level_name t.level)
    (Modifier.to_string t.modifier)
    t.compile_cycles t.invocations t.running_cycles t.discarded_samples
