lib/collect/collector.ml: Archive Array Dictionary Int64 List Rank_value Record Tessera_il Tessera_jit Tessera_modifiers Tessera_opt Tessera_util Tessera_vm
