lib/collect/dictionary.mli: Buffer Tessera_util
