lib/collect/archive.ml: Buffer Dictionary Fun Int64 List Printf Record String Tessera_util
