lib/collect/rank_value.ml: Int64 Record Tessera_jit
