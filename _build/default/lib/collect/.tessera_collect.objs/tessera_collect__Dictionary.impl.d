lib/collect/dictionary.ml: Hashtbl List Tessera_util
