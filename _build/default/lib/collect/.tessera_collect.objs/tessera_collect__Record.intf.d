lib/collect/record.mli: Buffer Format Tessera_features Tessera_modifiers Tessera_opt Tessera_util
