lib/collect/archive.mli: Dictionary Record
