lib/collect/rank_value.mli: Record
