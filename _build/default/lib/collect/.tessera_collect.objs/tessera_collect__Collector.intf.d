lib/collect/collector.mli: Archive Tessera_il Tessera_modifiers Tessera_opt Tessera_vm
