lib/collect/record.ml: Array Format Int64 Tessera_features Tessera_modifiers Tessera_opt Tessera_util
