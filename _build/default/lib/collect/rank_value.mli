(** The ranking function of Eq. (2):

    {v V_i = R_i / I_i + C_i / T_h v}

    — the average cycles of one invocation of the method under this
    compilation plus the compilation cost amortized over the level's
    trigger period.  Smaller is better.  It lives here (rather than in
    the data-processing library) because the guided search uses it online
    during collection; the offline ranking pipeline delegates to it. *)

val amortization : float
(** Compiled code outlives a single trigger period: the trigger values of
    this simulation's adaptive controller are much smaller than
    Testarossa's production counts, so the compilation-cost term is
    amortized over several periods to keep the cost/quality trade at the
    paper's operating point. *)

val value : Record.t -> float
(** Raises [Invalid_argument] on records with no valid invocations. *)
