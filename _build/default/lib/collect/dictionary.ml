module Codec = Tessera_util.Codec

type t = { by_name : (string, int) Hashtbl.t; mutable names : string list; mutable n : int }

let create () = { by_name = Hashtbl.create 64; names = []; n = 0 }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
      let id = t.n in
      Hashtbl.add t.by_name name id;
      t.names <- name :: t.names;
      t.n <- id + 1;
      id

let find t id =
  if id < 0 || id >= t.n then raise Not_found;
  List.nth t.names (t.n - 1 - id)

let size t = t.n

let encode t buf =
  Codec.write_varint buf t.n;
  List.iter (fun name -> Codec.write_string buf name) (List.rev t.names)

let decode r =
  let n = Codec.read_varint ~what:"dictionary size" r in
  let t = create () in
  for _ = 1 to n do
    ignore (intern t (Codec.read_string ~what:"dictionary entry" r))
  done;
  t

let equal a b = a.n = b.n && a.names = b.names
