(** Data collection (Section 4): runs a benchmark under an instrumented
    engine, exploring compilation-plan modifiers per method and producing
    a binary archive of experiment records.

    The flow mirrors Figure 2 of the paper: the VM's adaptive heuristics
    still decide {e when} to compile and at {e which} level; the strategy
    control draws the next pre-computed modifier for that level from the
    queue and the JIT compiles with it.  Instrumented enter/exit samples
    (with TSC-drift discard) accumulate into the record of the method's
    current compiled version.  After a computed per-method invocation
    threshold — targeting roughly 10 virtual milliseconds of accumulated
    running time between compilations, clamped to [50, 50000] — the
    collector requests a recompilation at the method's current level,
    moving exploration to the next modifier.  A method whose queue is
    exhausted is never recompiled again; when every queue is exhausted the
    collection terminates gracefully. *)

module Plan = Tessera_opt.Plan
module Values = Tessera_vm.Values
module Program = Tessera_il.Program

(** How the modifier space is explored. *)
type search =
  | Queue of Tessera_modifiers.Queue_ctrl.strategy
      (** the paper's pre-computed queues (randomized / Eq.-1 progressive) *)
  | Guided of Tessera_modifiers.Guided.params
      (** the paper's future work: per-method hill climbing on the Eq.-2
          ranking value observed during collection *)

type config = {
  levels : Plan.level list;  (** levels explored (paper: cold, warm, hot) *)
  search : search;
  uses_per_modifier : int;
  seed : int64;
  target_cycles_between_compiles : int;  (** paper: 10 ms; scaled here *)
  min_threshold : int;
  max_threshold : int;
  max_entry_invocations : int;  (** run budget *)
  target : Tessera_vm.Target.t;  (** back end the data is collected on *)
}

val default_config : config

type stats = {
  entry_invocations : int;
  records : int;
  discarded_samples : int;
  compilations : int;
}

val run :
  ?config:config ->
  program:Program.t ->
  benchmark:string ->
  entry_args:(int -> Values.t array) ->
  unit ->
  Archive.t * stats
