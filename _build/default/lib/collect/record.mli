(** One experiment record: the outcome of running one method, compiled at
    one level with one plan modifier, for some number of invocations.
    These are the data instances from which models are trained:
    Eq. (2) ranks a record by [R/I + C/T_h]. *)

module Features = Tessera_features.Features
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan

type t = {
  sig_id : int;  (** method signature id in the archive dictionary *)
  features : Features.t;  (** extracted before optimization *)
  level : Plan.level;
  modifier : Modifier.t;
  compile_cycles : int;  (** C_i *)
  invocations : int;  (** I_i — valid instrumented invocations *)
  running_cycles : int64;  (** R_i — accumulated over valid samples *)
  discarded_samples : int;  (** enter/exit pairs crossing a migration *)
}

val make :
  sig_id:int ->
  features:Features.t ->
  level:Plan.level ->
  modifier:Modifier.t ->
  compile_cycles:int ->
  t
(** Fresh record with zero samples. *)

val add_sample : t -> cycles:int64 -> valid:bool -> t

val encode : t -> Buffer.t -> unit
val decode : Tessera_util.Codec.reader -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
