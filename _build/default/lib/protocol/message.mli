(** The lean compiler ↔ model protocol (Section 7).

    Frames are length-prefixed: [u8 tag | varint payload length | payload].
    The compiler sends raw feature vectors; the model side renormalizes
    them with its scaling file and answers with a full 58-bit modifier
    pattern — the label→modifier lookup and the normalization both live
    with the model, so models can be swapped without changes to the
    compiler. *)

module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier

type t =
  | Init of { model_name : string }
  | Init_ok
  | Predict of { level : Plan.level; features : float array }
  | Prediction of { modifier : Modifier.t }
  | Ping
  | Pong
  | Shutdown
  | Error_msg of string

exception Malformed of string

val encode : t -> string
val decode_from : Channel.t -> t
(** Reads exactly one frame; raises {!Malformed} on unknown tags or bad
    payloads, [Channel.Closed] at end of stream. *)

val send : Channel.t -> t -> unit

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
