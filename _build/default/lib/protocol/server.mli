(** Model-server loop: answers [Predict] requests with modifiers.

    The predictor receives the already-renormalized feature vector and
    the optimization level; per-level models are the usual deployment
    (the paper trains one model per level). *)

type predictor =
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t

val step : Channel.t -> predictor -> bool
(** Handle exactly one incoming message; [false] after [Shutdown].
    Protocol errors are answered with [Error_msg] and the loop
    continues. *)

val serve : Channel.t -> predictor -> unit
(** Run {!step} until shutdown or channel close. *)
