module Modifier = Tessera_modifiers.Modifier

type t = { ch : Channel.t; lockstep : unit -> unit }

let connect ?(model_name = "default") ?(lockstep = fun () -> ()) ch =
  let c = { ch; lockstep } in
  Message.send ch (Message.Init { model_name });
  lockstep ();
  (match Message.decode_from ch with
  | Message.Init_ok -> ()
  | other ->
      failwith
        (Format.asprintf "Client.connect: expected InitOk, got %a" Message.pp
           other));
  c

let predict t ~level ~features =
  match
    Message.send t.ch (Message.Predict { level; features });
    t.lockstep ();
    Message.decode_from t.ch
  with
  | Message.Prediction { modifier } -> modifier
  | Message.Error_msg _ | _ -> Modifier.null
  | exception (Channel.Closed | Message.Malformed _) -> Modifier.null

let ping t =
  match
    Message.send t.ch Message.Ping;
    t.lockstep ();
    Message.decode_from t.ch
  with
  | Message.Pong -> true
  | _ -> false
  | exception _ -> false

let shutdown t =
  (try
     Message.send t.ch Message.Shutdown;
     t.lockstep ()
   with _ -> ());
  try Channel.close t.ch with _ -> ()
