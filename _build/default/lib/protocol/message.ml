module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Codec = Tessera_util.Codec

type t =
  | Init of { model_name : string }
  | Init_ok
  | Predict of { level : Plan.level; features : float array }
  | Prediction of { modifier : Modifier.t }
  | Ping
  | Pong
  | Shutdown
  | Error_msg of string

exception Malformed of string

let tag = function
  | Init _ -> 1
  | Init_ok -> 2
  | Predict _ -> 3
  | Prediction _ -> 4
  | Ping -> 5
  | Pong -> 6
  | Shutdown -> 7
  | Error_msg _ -> 8

let payload m =
  let buf = Buffer.create 64 in
  (match m with
  | Init { model_name } -> Codec.write_string buf model_name
  | Init_ok | Ping | Pong | Shutdown -> ()
  | Predict { level; features } ->
      Codec.write_varint buf (Plan.level_index level);
      Codec.write_varint buf (Array.length features);
      Array.iter (fun f -> Codec.write_f64 buf f) features
  | Prediction { modifier } -> Codec.write_i64 buf (Modifier.to_bits modifier)
  | Error_msg e -> Codec.write_string buf e);
  Buffer.contents buf

let encode m =
  let p = payload m in
  let buf = Buffer.create (String.length p + 6) in
  Codec.write_u8 buf (tag m);
  Codec.write_varint buf (String.length p);
  Buffer.add_string buf p;
  Buffer.contents buf

(* varints are read byte-by-byte from the channel to find the frame end *)
let read_varint_from ch =
  let rec go shift acc =
    if shift > 62 then raise (Malformed "frame length varint too long");
    let b = Char.code (Channel.read_exact ch 1).[0] in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let decode_from ch =
  let tag = Char.code (Channel.read_exact ch 1).[0] in
  let len = read_varint_from ch in
  if len > 1 lsl 20 then raise (Malformed "oversized frame");
  let body = Channel.read_exact ch len in
  let r = Codec.reader_of_string body in
  try
    match tag with
    | 1 -> Init { model_name = Codec.read_string ~what:"model name" r }
    | 2 -> Init_ok
    | 3 ->
        let level = Plan.level_of_index (Codec.read_varint ~what:"level" r) in
        let n = Codec.read_varint ~what:"feature count" r in
        if n > 4096 then raise (Malformed "feature vector too long");
        let features = Array.init n (fun _ -> Codec.read_f64 ~what:"feature" r) in
        Predict { level; features }
    | 4 -> Prediction { modifier = Modifier.of_bits (Codec.read_i64 ~what:"modifier" r) }
    | 5 -> Ping
    | 6 -> Pong
    | 7 -> Shutdown
    | 8 -> Error_msg (Codec.read_string ~what:"error" r)
    | t -> raise (Malformed (Printf.sprintf "unknown tag %d" t))
  with
  | Codec.Truncated w -> raise (Malformed ("truncated payload: " ^ w))
  | Invalid_argument w -> raise (Malformed w)

let send ch m = Channel.write ch (encode m)

let equal a b =
  match (a, b) with
  | Init x, Init y -> x.model_name = y.model_name
  | Init_ok, Init_ok | Ping, Ping | Pong, Pong | Shutdown, Shutdown -> true
  | Predict x, Predict y -> x.level = y.level && x.features = y.features
  | Prediction x, Prediction y -> Modifier.equal x.modifier y.modifier
  | Error_msg x, Error_msg y -> String.equal x y
  | _ -> false

let pp fmt = function
  | Init { model_name } -> Format.fprintf fmt "Init(%s)" model_name
  | Init_ok -> Format.fprintf fmt "InitOk"
  | Predict { level; features } ->
      Format.fprintf fmt "Predict(%s, %d features)" (Plan.level_name level)
        (Array.length features)
  | Prediction { modifier } ->
      Format.fprintf fmt "Prediction(%s)" (Modifier.to_string modifier)
  | Ping -> Format.fprintf fmt "Ping"
  | Pong -> Format.fprintf fmt "Pong"
  | Shutdown -> Format.fprintf fmt "Shutdown"
  | Error_msg e -> Format.fprintf fmt "Error(%s)" e
