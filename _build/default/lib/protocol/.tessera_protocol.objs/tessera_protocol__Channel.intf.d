lib/protocol/channel.mli: Unix
