lib/protocol/message.ml: Array Buffer Channel Char Format Printf String Tessera_modifiers Tessera_opt Tessera_util
