lib/protocol/message.mli: Channel Format Tessera_modifiers Tessera_opt
