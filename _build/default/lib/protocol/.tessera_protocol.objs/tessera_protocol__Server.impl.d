lib/protocol/server.ml: Channel Message Printexc Tessera_modifiers Tessera_opt
