lib/protocol/client.mli: Channel Tessera_modifiers Tessera_opt
