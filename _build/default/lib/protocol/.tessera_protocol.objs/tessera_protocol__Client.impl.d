lib/protocol/client.ml: Channel Format Message Tessera_modifiers
