lib/protocol/channel.ml: Bytes List Printf String Unix
