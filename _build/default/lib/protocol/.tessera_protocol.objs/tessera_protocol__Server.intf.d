lib/protocol/server.mli: Channel Tessera_modifiers Tessera_opt
