type predictor =
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t

let step ch predictor =
  match Message.decode_from ch with
  | Message.Init _ ->
      Message.send ch Message.Init_ok;
      true
  | Message.Ping ->
      Message.send ch Message.Pong;
      true
  | Message.Predict { level; features } ->
      (match predictor ~level ~features with
      | modifier -> Message.send ch (Message.Prediction { modifier })
      | exception e ->
          Message.send ch (Message.Error_msg (Printexc.to_string e)));
      true
  | Message.Shutdown -> false
  | Message.Init_ok | Message.Pong | Message.Prediction _ | Message.Error_msg _
    ->
      Message.send ch (Message.Error_msg "unexpected client->server message");
      true
  | exception Message.Malformed w ->
      Message.send ch (Message.Error_msg ("malformed: " ^ w));
      true

let serve ch predictor =
  let continue = ref true in
  (try
     while !continue do
       continue := step ch predictor
     done
   with Channel.Closed -> ());
  try Channel.close ch with _ -> ()
