(** Compiler-side client of the model protocol. *)

type t

val connect : ?model_name:string -> ?lockstep:(unit -> unit) -> Channel.t -> t
(** Sends [Init] and waits for [Init_ok].  [lockstep], when given, is run
    between sending a request and reading the response — in-process tests
    use it to run one {!Server.step} on the other endpoint of an
    in-memory pipe. *)

val predict :
  t ->
  level:Tessera_opt.Plan.level ->
  features:float array ->
  Tessera_modifiers.Modifier.t
(** [Error_msg] responses and protocol violations fall back to the null
    modifier (the compiler must never fail because the model did). *)

val ping : t -> bool
val shutdown : t -> unit
