exception Closed

(* one direction of an in-memory pipe *)
type mem_stream = {
  mutable data : string list;  (* chunks, oldest first (kept reversed) *)
  mutable pending : int;
  mutable closed : bool;
}

type t =
  | Mem of { incoming : mem_stream; outgoing : mem_stream }
  | Fd of { fin : Unix.file_descr; fout : Unix.file_descr; mutable open_ : bool }

let mem_stream () = { data = []; pending = 0; closed = false }

let write t s =
  match t with
  | Mem m ->
      if m.outgoing.closed then raise Closed;
      m.outgoing.data <- s :: m.outgoing.data;
      m.outgoing.pending <- m.outgoing.pending + String.length s
  | Fd f ->
      if not f.open_ then raise Closed;
      let len = String.length s in
      let written = ref 0 in
      while !written < len do
        let n =
          try Unix.write_substring f.fout s !written (len - !written)
          with Unix.Unix_error (Unix.EPIPE, _, _) -> raise Closed
        in
        if n = 0 then raise Closed;
        written := !written + n
      done

let read_exact t n =
  match t with
  | Mem m ->
      if m.incoming.pending < n then
        if m.incoming.closed then raise Closed
        else
          invalid_arg
            (Printf.sprintf
               "Channel.read_exact: in-memory channel has %d of %d bytes \
                (lockstep violation)"
               m.incoming.pending n)
      else begin
        let all = String.concat "" (List.rev m.incoming.data) in
        let out = String.sub all 0 n in
        let rest = String.sub all n (String.length all - n) in
        m.incoming.data <- (if rest = "" then [] else [ rest ]);
        m.incoming.pending <- String.length rest;
        out
      end
  | Fd f ->
      if not f.open_ then raise Closed;
      let buf = Bytes.create n in
      let got = ref 0 in
      while !got < n do
        let r = Unix.read f.fin buf !got (n - !got) in
        if r = 0 then raise Closed;
        got := !got + r
      done;
      Bytes.to_string buf

let close = function
  | Mem m ->
      m.outgoing.closed <- true;
      m.incoming.closed <- true
  | Fd f ->
      if f.open_ then begin
        f.open_ <- false;
        (try Unix.close f.fin with Unix.Unix_error _ -> ());
        if f.fout <> f.fin then
          try Unix.close f.fout with Unix.Unix_error _ -> ()
      end

let of_fds fin fout = Fd { fin; fout; open_ = true }

let pipe_pair () =
  let a_to_b = mem_stream () in
  let b_to_a = mem_stream () in
  ( Mem { incoming = b_to_a; outgoing = a_to_b },
    Mem { incoming = a_to_b; outgoing = b_to_a } )

let fifo_pair ~path_a ~path_b =
  List.iter
    (fun p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      Unix.mkfifo p 0o600)
    [ path_a; path_b ];
  let open_a () =
    (* opening order matters with FIFOs: read end first, matching B *)
    let fin = Unix.openfile path_a [ Unix.O_RDONLY ] 0 in
    let fout = Unix.openfile path_b [ Unix.O_WRONLY ] 0 in
    of_fds fin fout
  in
  let open_b () =
    let fout = Unix.openfile path_a [ Unix.O_WRONLY ] 0 in
    let fin = Unix.openfile path_b [ Unix.O_RDONLY ] 0 in
    of_fds fin fout
  in
  (open_a, open_b)
