(** Byte channels for compiler ↔ model communication.

    The paper runs the machine-learned model in a separate process and
    talks to it over named pipes, so models can be swapped without
    touching the compiler.  This module abstracts the transport: an
    in-memory pipe pair for tests and in-process use, and Unix file
    descriptors (including FIFOs created with [mkfifo]) for the real
    two-process setup. *)

type t

exception Closed

val write : t -> string -> unit
val read_exact : t -> int -> string
(** Blocks until the requested byte count is available; raises {!Closed}
    on end of stream. *)

val close : t -> unit

val of_fds : Unix.file_descr -> Unix.file_descr -> t
(** [of_fds input output]. *)

val pipe_pair : unit -> t * t
(** In-memory bidirectional pair: what one end writes the other reads. *)

val fifo_pair : path_a:string -> path_b:string -> (unit -> t) * (unit -> t)
(** Creates two FIFOs and returns openers for the two endpoints (each
    opener blocks until the peer opens the other end, as named pipes
    do).  Endpoint A reads [path_a] and writes [path_b]; B the
    opposite. *)
