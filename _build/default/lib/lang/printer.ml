module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Classdef = Tessera_il.Classdef
module Program = Tessera_il.Program

let rec pp_expr fmt (n : Node.t) =
  Format.fprintf fmt "@[<hov 2>(%s %s" (Opcode.name n.Node.op)
    (Types.name n.Node.ty);
  (match n.Node.op with
  | Opcode.Loadconst ->
      if Types.is_floating n.Node.ty then
        Format.fprintf fmt " %h" (Node.const_float n)
      else Format.fprintf fmt " %Ld" n.Node.const
  | Opcode.Inc -> Format.fprintf fmt " $%d %Ld" n.Node.sym n.Node.const
  | _ -> if n.Node.sym >= 0 then Format.fprintf fmt " $%d" n.Node.sym);
  Array.iter (fun k -> Format.fprintf fmt "@ %a" pp_expr k) n.Node.args;
  Format.fprintf fmt ")@]"

let attr_names (a : Meth.attrs) =
  List.filter_map
    (fun (set, name) -> if set then Some name else None)
    [
      (a.Meth.constructor, "constructor");
      (a.Meth.final, "final");
      (a.Meth.protected_, "protected");
      (a.Meth.public, "public");
      (a.Meth.static, "static");
      (a.Meth.synchronized, "synchronized");
      (a.Meth.strictfp, "strictfp");
      (a.Meth.virtual_overridden, "overridden");
      (a.Meth.uses_unsafe, "unsafe");
      (a.Meth.uses_bigdecimal, "bigdecimal");
    ]

let pp_term fmt = function
  | Block.Goto t -> Format.fprintf fmt "(goto %d)" t
  | Block.If { cond; if_true; if_false } ->
      Format.fprintf fmt "@[<hov 2>(if %a@ %d %d)@]" pp_expr cond if_true
        if_false
  | Block.Return None -> Format.fprintf fmt "(return)"
  | Block.Return (Some v) ->
      Format.fprintf fmt "@[<hov 2>(return %a)@]" pp_expr v
  | Block.Throw v -> Format.fprintf fmt "@[<hov 2>(throw %a)@]" pp_expr v

let pp_method fmt (m : Meth.t) =
  Format.fprintf fmt "@[<v 2>method %S (%s) returns %s {" m.Meth.name
    (String.concat " " (attr_names m.Meth.attrs))
    (Types.name m.Meth.ret);
  Array.iter
    (fun (s : Symbol.t) ->
      Format.fprintf fmt "@,%s %S %s"
        (match s.Symbol.kind with Symbol.Arg -> "arg" | Symbol.Temp -> "temp")
        s.Symbol.name (Types.name s.Symbol.ty))
    m.Meth.symbols;
  Array.iter
    (fun (b : Block.t) ->
      (match b.Block.handler with
      | None -> Format.fprintf fmt "@,@[<v 2>block %d {" b.Block.id
      | Some h -> Format.fprintf fmt "@,@[<v 2>block %d handler %d {" b.Block.id h);
      List.iter (fun s -> Format.fprintf fmt "@,%a" pp_expr s) b.Block.stmts;
      Format.fprintf fmt "@,%a" pp_term b.Block.term;
      Format.fprintf fmt "@]@,}")
    m.Meth.blocks;
  Format.fprintf fmt "@]@,}"

let pp_program fmt (p : Program.t) =
  Format.fprintf fmt "@[<v>program %S entry %d@," p.Program.name
    p.Program.entry;
  Array.iter
    (fun (c : Classdef.t) ->
      Format.fprintf fmt "@[<h>class %S parent %d {%a }@]@," c.Classdef.name
        c.Classdef.parent
        (fun fmt fields ->
          Array.iter (fun ty -> Format.fprintf fmt " %s" (Types.name ty)) fields)
        c.Classdef.fields)
    p.Program.classes;
  Array.iter (fun m -> Format.fprintf fmt "%a@," pp_method m) p.Program.methods;
  Format.fprintf fmt "@]"

let method_to_string m = Format.asprintf "%a" pp_method m
let program_to_string p = Format.asprintf "%a" pp_program p
