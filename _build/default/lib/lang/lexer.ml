type token =
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Ident of string
  | Int of int64
  | Float of float
  | Sym of int
  | Str of string
  | Eof

exception Error of { line : int; col : int; message : string }

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable lookahead : token option;
}

let create src = { src; pos = 0; line = 1; col = 1; lookahead = None }

let position t = (t.line, t.col)

let fail t message = raise (Error { line = t.line; col = t.col; message })

let peek_char t = if t.pos >= String.length t.src then None else Some t.src.[t.pos]

let advance t =
  (match peek_char t with
  | Some '\n' ->
      t.line <- t.line + 1;
      t.col <- 1
  | Some _ -> t.col <- t.col + 1
  | None -> ());
  t.pos <- t.pos + 1

let rec skip_ws t =
  match peek_char t with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance t;
      skip_ws t
  | Some ';' ->
      (* comment to end of line *)
      let rec eat () =
        match peek_char t with
        | Some '\n' | None -> ()
        | Some _ ->
            advance t;
            eat ()
      in
      eat ();
      skip_ws t
  | _ -> ()

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_'

let is_num_char c =
  (c >= '0' && c <= '9')
  || (c >= 'a' && c <= 'f')
  || (c >= 'A' && c <= 'F')
  || c = 'x' || c = 'X' || c = '.' || c = 'p' || c = 'P' || c = '+' || c = '-'
  || c = 'e' || c = 'E'

let read_while t pred =
  let start = t.pos in
  while (match peek_char t with Some c -> pred c | None -> false) do
    advance t
  done;
  String.sub t.src start (t.pos - start)

let read_number t ~negative =
  let body =
    (* the sign was already consumed; numbers may be hex ints or (hex)
       floats.  Careful scanning: '+'/'-' only valid right after p/e. *)
    let buf = Buffer.create 16 in
    let rec go prev =
      match peek_char t with
      | Some c
        when is_num_char c
             && ((c <> '+' && c <> '-')
                || prev = 'p' || prev = 'P' || prev = 'e' || prev = 'E') ->
          Buffer.add_char buf c;
          advance t;
          go c
      | _ -> ()
    in
    go ' ';
    Buffer.contents buf
  in
  let s = if negative then "-" ^ body else body in
  let is_float =
    String.contains body '.'
    || ((not (String.length body > 1 && (body.[1] = 'x' || body.[1] = 'X')))
       && (String.contains body 'e' || String.contains body 'E'))
    || String.contains body 'p'
    || String.contains body 'P'
  in
  if is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail t (Printf.sprintf "bad float literal %S" s)
  else
    match Int64.of_string_opt s with
    | Some v -> Int v
    | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail t (Printf.sprintf "bad numeric literal %S" s))

let read_string t =
  advance t (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char t with
    | None -> fail t "unterminated string"
    | Some '"' ->
        advance t;
        Buffer.contents buf
    | Some '\\' -> (
        advance t;
        match peek_char t with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance t;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance t;
            go ()
        | Some ('"' | '\\') ->
            Buffer.add_char buf t.src.[t.pos];
            advance t;
            go ()
        | _ -> fail t "bad escape sequence")
    | Some c ->
        Buffer.add_char buf c;
        advance t;
        go ()
  in
  go ()

let lex t =
  skip_ws t;
  match peek_char t with
  | None -> Eof
  | Some '(' ->
      advance t;
      Lparen
  | Some ')' ->
      advance t;
      Rparen
  | Some '{' ->
      advance t;
      Lbrace
  | Some '}' ->
      advance t;
      Rbrace
  | Some '"' -> Str (read_string t)
  | Some '$' ->
      advance t;
      let digits = read_while t (fun c -> c >= '0' && c <= '9') in
      if digits = "" then fail t "expected symbol number after $"
      else Sym (int_of_string digits)
  | Some '-' ->
      advance t;
      read_number t ~negative:true
  | Some c when c >= '0' && c <= '9' -> read_number t ~negative:false
  | Some c when is_ident_char c -> Ident (read_while t is_ident_char)
  | Some c -> fail t (Printf.sprintf "unexpected character %C" c)

let peek t =
  match t.lookahead with
  | Some tok -> tok
  | None ->
      let tok = lex t in
      t.lookahead <- Some tok;
      tok

let next t =
  match t.lookahead with
  | Some tok ->
      t.lookahead <- None;
      tok
  | None -> lex t

let token_name = function
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Ident s -> s
  | Int v -> Int64.to_string v
  | Float f -> Printf.sprintf "%h" f
  | Sym n -> Printf.sprintf "$%d" n
  | Str s -> Printf.sprintf "%S" s
  | Eof -> "<eof>"

let expect t tok =
  let got = next t in
  if got <> tok then
    fail t
      (Printf.sprintf "expected %s but found %s" (token_name tok)
         (token_name got))
