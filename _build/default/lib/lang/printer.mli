(** Canonical textual rendering of IL programs (.tir).

    The format is the exact inverse of {!Parser}: for any well-formed
    program [p], [Parser.parse_program (Printer.program_to_string p)]
    succeeds and is structurally equal to [p].  Optimization flags and
    block frequencies are {e not} part of the surface syntax — the format
    describes pre-optimization programs. *)

val pp_expr : Format.formatter -> Tessera_il.Node.t -> unit
val pp_method : Format.formatter -> Tessera_il.Meth.t -> unit
val pp_program : Format.formatter -> Tessera_il.Program.t -> unit

val method_to_string : Tessera_il.Meth.t -> string
val program_to_string : Tessera_il.Program.t -> string
