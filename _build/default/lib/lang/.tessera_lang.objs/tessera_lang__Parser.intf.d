lib/lang/parser.mli: Tessera_il
