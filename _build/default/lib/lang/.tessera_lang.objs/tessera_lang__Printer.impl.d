lib/lang/printer.ml: Array Format List String Tessera_il
