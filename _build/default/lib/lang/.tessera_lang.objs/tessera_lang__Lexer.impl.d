lib/lang/lexer.ml: Buffer Int64 Printf String
