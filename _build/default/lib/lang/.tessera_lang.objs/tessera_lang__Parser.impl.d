lib/lang/parser.ml: Array Format Fun Int64 Lexer List Printf Tessera_il
