lib/lang/lexer.mli:
