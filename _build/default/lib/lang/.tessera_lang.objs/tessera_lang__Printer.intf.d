lib/lang/printer.mli: Format Tessera_il
