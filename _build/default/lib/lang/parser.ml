module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Symbol = Tessera_il.Symbol
module Classdef = Tessera_il.Classdef
module Program = Tessera_il.Program

exception Parse_error of { line : int; col : int; message : string }

let fail lx message =
  let line, col = Lexer.position lx in
  raise (Parse_error { line; col; message })

let wrap lx f =
  try f () with
  | Lexer.Error { line; col; message } -> raise (Parse_error { line; col; message })
  | Failure m -> fail lx m

let ident lx =
  match Lexer.next lx with
  | Lexer.Ident s -> s
  | tok -> fail lx (Printf.sprintf "expected identifier, found %s" (Lexer.token_name tok))

let keyword lx kw =
  let s = ident lx in
  if s <> kw then fail lx (Printf.sprintf "expected %S, found %S" kw s)

let string_lit lx =
  match Lexer.next lx with
  | Lexer.Str s -> s
  | tok -> fail lx (Printf.sprintf "expected string, found %s" (Lexer.token_name tok))

let int_lit lx =
  match Lexer.next lx with
  | Lexer.Int v -> Int64.to_int v
  | tok -> fail lx (Printf.sprintf "expected integer, found %s" (Lexer.token_name tok))

let type_name lx =
  let s = ident lx in
  match Types.of_name s with
  | Some t -> t
  | None -> fail lx (Printf.sprintf "unknown type %S" s)

let rec expr lx =
  Lexer.expect lx Lexer.Lparen;
  let opname = ident lx in
  let op =
    match Opcode.of_name opname with
    | Some op -> op
    | None -> fail lx (Printf.sprintf "unknown opcode %S" opname)
  in
  let ty = type_name lx in
  let sym = ref (-1) in
  let const = ref 0L in
  (match op with
  | Opcode.Loadconst -> (
      match Lexer.next lx with
      | Lexer.Int v ->
          if Types.is_floating ty then const := Int64.bits_of_float (Int64.to_float v)
          else const := v
      | Lexer.Float f ->
          if Types.is_floating ty then const := Int64.bits_of_float f
          else fail lx "float literal for integral constant"
      | Lexer.Ident ("nan" | "inf" | "infinity") when Types.is_floating ty ->
          const := Int64.bits_of_float (float_of_string "nan")
      | tok -> fail lx (Printf.sprintf "expected literal, found %s" (Lexer.token_name tok)))
  | Opcode.Inc -> (
      (match Lexer.next lx with
      | Lexer.Sym n -> sym := n
      | tok -> fail lx (Printf.sprintf "expected $symbol, found %s" (Lexer.token_name tok)));
      match Lexer.next lx with
      | Lexer.Int v -> const := v
      | tok -> fail lx (Printf.sprintf "expected increment, found %s" (Lexer.token_name tok)))
  | _ -> (
      match Lexer.peek lx with
      | Lexer.Sym n ->
          ignore (Lexer.next lx);
          sym := n
      | _ -> ()));
  let args = ref [] in
  while Lexer.peek lx = Lexer.Lparen do
    args := expr lx :: !args
  done;
  Lexer.expect lx Lexer.Rparen;
  Node.mk ~sym:!sym ~const:!const op ty (Array.of_list (List.rev !args))

let block lx =
  keyword lx "block";
  let id = int_lit lx in
  let handler =
    match Lexer.peek lx with
    | Lexer.Ident "handler" ->
        ignore (Lexer.next lx);
        Some (int_lit lx)
    | _ -> None
  in
  Lexer.expect lx Lexer.Lbrace;
  (* Statements until the closing brace.  Terminators and expressions
     share the s-expression shape, so read '(' plus the head identifier
     and dispatch on it: goto/if/return/throw end the block. *)
  let stmts = ref [] in
  let term = ref None in
  let rec loop () =
    match Lexer.peek lx with
    | Lexer.Rbrace -> ()
    | _ ->
        (* manual dispatch on the identifier after '(' *)
        Lexer.expect lx Lexer.Lparen;
        let head = ident lx in
        let is_term =
          match head with
          | "goto" | "if" | "return" | "throw" -> true
          | _ -> false
        in
        if is_term then begin
          let t =
            match head with
            | "goto" -> Block.Goto (int_lit lx)
            | "if" ->
                let cond = expr lx in
                let if_true = int_lit lx in
                let if_false = int_lit lx in
                Block.If { cond; if_true; if_false }
            | "return" ->
                if Lexer.peek lx = Lexer.Lparen then Block.Return (Some (expr lx))
                else Block.Return None
            | _ -> Block.Throw (expr lx)
          in
          Lexer.expect lx Lexer.Rparen;
          term := Some t
        end
        else begin
          (* re-parse as an expression whose '(' and head were consumed:
             rebuild by handling the rest inline *)
          let op =
            match Opcode.of_name head with
            | Some op -> op
            | None -> fail lx (Printf.sprintf "unknown opcode %S" head)
          in
          let ty = type_name lx in
          let sym = ref (-1) in
          let const = ref 0L in
          (match op with
          | Opcode.Loadconst -> (
              match Lexer.next lx with
              | Lexer.Int v ->
                  if Types.is_floating ty then
                    const := Int64.bits_of_float (Int64.to_float v)
                  else const := v
              | Lexer.Float f -> const := Int64.bits_of_float f
              | tok ->
                  fail lx
                    (Printf.sprintf "expected literal, found %s" (Lexer.token_name tok)))
          | Opcode.Inc -> (
              (match Lexer.next lx with
              | Lexer.Sym n -> sym := n
              | tok ->
                  fail lx
                    (Printf.sprintf "expected $symbol, found %s" (Lexer.token_name tok)));
              match Lexer.next lx with
              | Lexer.Int v -> const := v
              | tok ->
                  fail lx
                    (Printf.sprintf "expected increment, found %s" (Lexer.token_name tok)))
          | _ -> (
              match Lexer.peek lx with
              | Lexer.Sym n ->
                  ignore (Lexer.next lx);
                  sym := n
              | _ -> ()));
          let args = ref [] in
          while Lexer.peek lx = Lexer.Lparen do
            args := expr lx :: !args
          done;
          Lexer.expect lx Lexer.Rparen;
          stmts :=
            Node.mk ~sym:!sym ~const:!const op ty (Array.of_list (List.rev !args))
            :: !stmts;
          loop ()
        end
  in
  loop ();
  Lexer.expect lx Lexer.Rbrace;
  match !term with
  | None -> fail lx (Printf.sprintf "block %d has no terminator" id)
  | Some t -> Block.make ~handler id (List.rev !stmts) t

let attrs_of_names lx names =
  List.fold_left
    (fun (a : Meth.attrs) name ->
      match name with
      | "constructor" -> { a with Meth.constructor = true }
      | "final" -> { a with Meth.final = true }
      | "protected" -> { a with Meth.protected_ = true }
      | "public" -> { a with Meth.public = true }
      | "static" -> { a with Meth.static = true }
      | "synchronized" -> { a with Meth.synchronized = true }
      | "strictfp" -> { a with Meth.strictfp = true }
      | "overridden" -> { a with Meth.virtual_overridden = true }
      | "unsafe" -> { a with Meth.uses_unsafe = true }
      | "bigdecimal" -> { a with Meth.uses_bigdecimal = true }
      | other -> fail lx (Printf.sprintf "unknown attribute %S" other))
    {
      Meth.default_attrs with
      Meth.public = false;
      static = false;
    }
    names

let method_ lx =
  keyword lx "method";
  let name = string_lit lx in
  Lexer.expect lx Lexer.Lparen;
  let attr_names = ref [] in
  let rec collect () =
    match Lexer.peek lx with
    | Lexer.Ident _ ->
        attr_names := ident lx :: !attr_names;
        collect ()
    | _ -> ()
  in
  collect ();
  Lexer.expect lx Lexer.Rparen;
  let attrs = attrs_of_names lx (List.rev !attr_names) in
  keyword lx "returns";
  let ret = type_name lx in
  Lexer.expect lx Lexer.Lbrace;
  let symbols = ref [] in
  let rec syms () =
    match Lexer.peek lx with
    | Lexer.Ident "arg" ->
        ignore (Lexer.next lx);
        let n = string_lit lx in
        let ty = type_name lx in
        symbols := Symbol.arg n ty :: !symbols;
        syms ()
    | Lexer.Ident "temp" ->
        ignore (Lexer.next lx);
        let n = string_lit lx in
        let ty = type_name lx in
        symbols := Symbol.temp n ty :: !symbols;
        syms ()
    | _ -> ()
  in
  syms ();
  let blocks = ref [] in
  let rec blks () =
    match Lexer.peek lx with
    | Lexer.Ident "block" ->
        blocks := block lx :: !blocks;
        blks ()
    | _ -> ()
  in
  blks ();
  Lexer.expect lx Lexer.Rbrace;
  let symbols = Array.of_list (List.rev !symbols) in
  let params =
    Array.of_list
      (List.filter_map
         (fun (s : Symbol.t) ->
           if s.Symbol.kind = Symbol.Arg then Some s.Symbol.ty else None)
         (Array.to_list symbols))
  in
  Meth.make ~attrs ~name ~params ~ret ~symbols
    (Array.of_list (List.rev !blocks))

let class_ lx =
  keyword lx "class";
  let name = string_lit lx in
  keyword lx "parent";
  let parent = int_lit lx in
  Lexer.expect lx Lexer.Lbrace;
  let fields = ref [] in
  let rec go () =
    match Lexer.peek lx with
    | Lexer.Ident _ ->
        fields := type_name lx :: !fields;
        go ()
    | _ -> ()
  in
  go ();
  Lexer.expect lx Lexer.Rbrace;
  Classdef.make ~parent name (Array.of_list (List.rev !fields))

let program lx =
  keyword lx "program";
  let name = string_lit lx in
  keyword lx "entry";
  let entry = int_lit lx in
  let classes = ref [] in
  let methods = ref [] in
  let rec go () =
    match Lexer.peek lx with
    | Lexer.Ident "class" ->
        classes := class_ lx :: !classes;
        go ()
    | Lexer.Ident "method" ->
        methods := method_ lx :: !methods;
        go ()
    | Lexer.Eof -> ()
    | tok -> fail lx (Printf.sprintf "unexpected %s at top level" (Lexer.token_name tok))
  in
  go ();
  let p =
    Program.make ~name
      ~classes:(Array.of_list (List.rev !classes))
      ~entry
      (Array.of_list (List.rev !methods))
  in
  (match Tessera_il.Validate.check_program p with
  | [] -> ()
  | errs ->
      fail lx
        (Format.asprintf "invalid program: %a"
           (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt "; ")
              Tessera_il.Validate.pp_error)
           errs));
  p

let parse_expr s =
  let lx = Lexer.create s in
  wrap lx (fun () -> expr lx)

let parse_method s =
  let lx = Lexer.create s in
  wrap lx (fun () -> method_ lx)

let parse_program s =
  let lx = Lexer.create s in
  wrap lx (fun () -> program lx)

let load_program path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_program (really_input_string ic (in_channel_length ic)))
