(** Recursive-descent parser for the .tir assembly, inverse of
    {!Printer}. *)

exception Parse_error of { line : int; col : int; message : string }

val parse_expr : string -> Tessera_il.Node.t
val parse_method : string -> Tessera_il.Meth.t
val parse_program : string -> Tessera_il.Program.t
(** All raise {!Parse_error} with 1-based position information on
    malformed input.  Parsed programs are validated
    ({!Tessera_il.Validate}); validation failures also raise
    {!Parse_error}. *)

val load_program : string -> Tessera_il.Program.t
(** Parse a .tir file from disk. *)
