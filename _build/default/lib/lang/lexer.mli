(** Tokenizer for the textual IL assembly (.tir). *)

type token =
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Ident of string  (** identifiers and dotted mnemonics, e.g. [cmp.lt] *)
  | Int of int64
  | Float of float  (** hex floats round-trip exactly *)
  | Sym of int  (** [$3] *)
  | Str of string  (** double-quoted with escapes *)
  | Eof

type t

exception Error of { line : int; col : int; message : string }

val create : string -> t
val peek : t -> token
val next : t -> token
val expect : t -> token -> unit
(** Raises {!Error} with position info when the next token differs. *)

val position : t -> int * int
(** Current (line, column), 1-based. *)

val token_name : token -> string
