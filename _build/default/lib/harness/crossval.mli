(** Cross-validation of the learned classifiers (Section 6: "merging of
    intermediate data sets allows for the selective use of data sets of
    interest to enable cross-validation and leave-one-out
    cross-validation").

    Two views:
    - {!kfold_accuracy}: classifier accuracy under k-fold CV on one
      level's training set — how well the SVM predicts the {e label} of
      held-out instances;
    - {!loo_benchmark_accuracy}: the paper's own protocol — train on four
      benchmarks, measure label accuracy on the fifth's instances. *)

module Plan = Tessera_opt.Plan

type level_accuracy = {
  level : Plan.level;
  instances : int;
  classes : int;
  accuracy : float;
}

val kfold_accuracy :
  ?k:int ->
  ?solver:Modelset.solver ->
  Tessera_collect.Record.t list ->
  level_accuracy list
(** Per-level k-fold accuracy (k defaults to 5; levels with fewer than
    [2k] ranked instances or fewer than 2 classes are skipped). *)

val loo_benchmark_accuracy :
  ?solver:Modelset.solver ->
  Collection.outcome list ->
  (string (* excluded tag *) * level_accuracy list) list
(** For every leave-one-out split: train per-level models on the other
    benchmarks and score them on the excluded benchmark's ranked
    instances. *)

val report : Format.formatter -> (string * level_accuracy list) list -> unit
