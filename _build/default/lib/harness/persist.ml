module Archive = Tessera_collect.Archive
module Suites = Tessera_workloads.Suites

let path dir name suffix = Filename.concat dir (name ^ suffix ^ ".tsra")

let save ~dir outcomes =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (o : Collection.outcome) ->
      let name =
        o.Collection.bench.Suites.profile.Tessera_workloads.Profile.name
      in
      Archive.save o.Collection.randomized (path dir name ".rand");
      Archive.save o.Collection.progressive (path dir name ".prog");
      Archive.save o.Collection.merged (path dir name ""))
    outcomes

let merged_names dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (fun f ->
         if
           Filename.check_suffix f ".tsra"
           && (not (Filename.check_suffix f ".rand.tsra"))
           && not (Filename.check_suffix f ".prog.tsra")
         then Some (Filename.chop_suffix f ".tsra")
         else None)
  |> List.sort compare

let load ~dir =
  List.map
    (fun name ->
      let bench =
        match Suites.find name with
        | Some b -> b
        | None -> failwith (Printf.sprintf "Persist.load: unknown benchmark %S" name)
      in
      {
        Collection.tag = bench.Suites.tag;
        bench;
        randomized = Archive.load (path dir name ".rand");
        progressive = Archive.load (path dir name ".prog");
        merged = Archive.load (path dir name "");
        stats = [];
      })
    (merged_names dir)

let is_campaign_dir dir =
  Sys.file_exists dir && Sys.is_directory dir && merged_names dir <> []
