module Stats = Tessera_util.Stats
module Prng = Tessera_util.Prng
module Suites = Tessera_workloads.Suites
module Generate = Tessera_workloads.Generate
module Engine = Tessera_jit.Engine
module Values = Tessera_vm.Values

type run_metrics = {
  app_cycles : int64;
  compile_cycles : int64;
  compilations : int;
  methods_compiled : int;
}

let run_once ?(cfg = Expconfig.default) ?(target = Tessera_vm.Target.zircon)
    ?model ~bench ~iterations ~trial () =
  let bench = Suites.scale_bench bench cfg.Expconfig.bench_scale in
  let program = Generate.program bench.Suites.profile in
  let callbacks =
    match model with
    | None -> Engine.no_callbacks
    | Some ms ->
        {
          Engine.no_callbacks with
          Engine.choose_modifier = Some (Modelset.choose_modifier ms);
        }
  in
  let engine =
    Engine.create
      ~config:
        {
          Engine.default_config with
          Engine.clock_seed = Int64.add cfg.Expconfig.seed (Int64.of_int trial);
          target;
        }
      ~callbacks program
  in
  let arg_base = trial * 17 in
  for it = 0 to iterations - 1 do
    for k = 0 to bench.Suites.iteration_invocations - 1 do
      ignore
        (Engine.invoke_entry engine
           [| Values.Int_v (Int64.of_int (arg_base + (it * 31) + k)) |])
    done
  done;
  {
    app_cycles = Engine.app_cycles engine;
    compile_cycles = Engine.total_compile_cycles engine;
    compilations = Engine.compile_count engine;
    methods_compiled = Engine.methods_compiled engine;
  }

type cell = {
  bench : string;
  model : string;
  startup_perf : Stats.summary;
  startup_compile : Stats.summary;
  throughput_perf : Stats.summary;
  throughput_compile : Stats.summary;
}

(* expand per-trial cycle measurements into noisy relative samples *)
let relative_samples ~cfg ~rng ~invert base variant =
  let trials = Array.length base in
  let draws_per_trial = max 1 (cfg.Expconfig.noise_draws / trials) in
  let samples = ref [] in
  Array.iteri
    (fun i b ->
      let v = variant.(i) in
      for _ = 1 to draws_per_trial do
        let noise () = 1.0 +. Prng.gaussian rng ~mu:0.0 ~sigma:cfg.Expconfig.noise_sd in
        let b = Int64.to_float b *. noise () in
        let v = Int64.to_float v *. noise () in
        let r = if invert then v /. b else b /. v in
        samples := r :: !samples
      done)
    base;
  Stats.summarize (Array.of_list !samples)

let evaluate_variant ~cfg ~bench ?model () =
  let trials = max 1 cfg.Expconfig.trials in
  let startup =
    Array.init trials (fun t -> run_once ~cfg ?model ~bench ~iterations:1 ~trial:t ())
  in
  let throughput =
    Array.init trials (fun t ->
        run_once ~cfg ?model ~bench
          ~iterations:cfg.Expconfig.throughput_iterations ~trial:t ())
  in
  (startup, throughput)

let evaluate_bench ?(cfg = Expconfig.default) ~models bench =
  let base_startup, base_throughput = evaluate_variant ~cfg ~bench () in
  List.map
    (fun (ms : Modelset.t) ->
      let s, t = evaluate_variant ~cfg ~bench ~model:ms () in
      let rng = Prng.create (Int64.add cfg.Expconfig.seed 0xA11CEL) in
      let app r = Array.map (fun m -> m.app_cycles) r in
      let comp r =
        Array.map (fun m -> Int64.add 1L m.compile_cycles) r
        (* +1 avoids 0/0 when nothing compiles in tiny configs *)
      in
      {
        bench = bench.Suites.profile.Tessera_workloads.Profile.name;
        model = ms.Modelset.name;
        startup_perf =
          relative_samples ~cfg ~rng ~invert:false (app base_startup) (app s);
        startup_compile =
          relative_samples ~cfg ~rng ~invert:true (comp base_startup) (comp s);
        throughput_perf =
          relative_samples ~cfg ~rng ~invert:false (app base_throughput) (app t);
        throughput_compile =
          relative_samples ~cfg ~rng ~invert:true (comp base_throughput) (comp t);
      })
    models

type matrix = {
  spec_cells : cell list;
  dacapo_cells : cell list;
}

let full_matrix ?(cfg = Expconfig.default) ~loo ?(spec = Suites.specjvm98)
    ?(dacapo = Suites.dacapo) () =
  let all_models = List.map (fun (s : Training.loo_set) -> s.Training.modelset) loo in
  let models_for (b : Suites.bench) =
    if b.Suites.trainable then
      (* leave-one-out: only the model set that excludes this benchmark *)
      List.filter_map
        (fun (s : Training.loo_set) ->
          if s.Training.excluded_tag = b.Suites.tag then Some s.Training.modelset
          else None)
        loo
    else all_models
  in
  let eval suite =
    List.concat_map
      (fun b -> evaluate_bench ~cfg ~models:(models_for b) b)
      suite
  in
  { spec_cells = eval spec; dacapo_cells = eval dacapo }
