lib/harness/expconfig.ml:
