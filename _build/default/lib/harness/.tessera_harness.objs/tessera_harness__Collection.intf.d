lib/harness/collection.mli: Expconfig Tessera_collect Tessera_vm Tessera_workloads
