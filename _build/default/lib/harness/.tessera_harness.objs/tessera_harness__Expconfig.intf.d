lib/harness/expconfig.mli:
