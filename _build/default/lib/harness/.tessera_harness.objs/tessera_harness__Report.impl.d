lib/harness/report.ml: Array Collection Evaluation Float Format List Modelset String Tessera_collect Tessera_dataproc Tessera_opt Tessera_util Tessera_workloads Training
