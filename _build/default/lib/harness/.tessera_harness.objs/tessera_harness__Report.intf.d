lib/harness/report.mli: Collection Evaluation Format Tessera_util Training
