lib/harness/crossval.mli: Collection Format Modelset Tessera_collect Tessera_opt
