lib/harness/evaluation.ml: Array Expconfig Int64 List Modelset Tessera_jit Tessera_util Tessera_vm Tessera_workloads Training
