lib/harness/collection.ml: Expconfig Int64 List Tessera_collect Tessera_modifiers Tessera_vm Tessera_workloads
