lib/harness/modelset.ml: Array Filename List Printf Sys Tessera_dataproc Tessera_features Tessera_il Tessera_jit Tessera_modifiers Tessera_opt Tessera_svm
