lib/harness/persist.mli: Collection
