lib/harness/persist.ml: Array Collection Filename List Printf Sys Tessera_collect Tessera_workloads
