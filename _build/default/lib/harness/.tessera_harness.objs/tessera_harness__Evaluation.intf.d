lib/harness/evaluation.mli: Expconfig Modelset Tessera_util Tessera_vm Tessera_workloads Training
