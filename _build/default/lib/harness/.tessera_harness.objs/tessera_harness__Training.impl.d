lib/harness/training.ml: Collection List Modelset Printf Tessera_collect Tessera_svm
