lib/harness/training.mli: Collection Modelset Tessera_collect Tessera_svm
