lib/harness/crossval.ml: Collection Format List Modelset Tessera_dataproc Tessera_modifiers Tessera_opt Tessera_svm Training
