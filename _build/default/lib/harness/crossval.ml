module Plan = Tessera_opt.Plan
module Trainset = Tessera_dataproc.Trainset
module Problem = Tessera_svm.Problem
module Metrics = Tessera_svm.Metrics

type level_accuracy = {
  level : Plan.level;
  instances : int;
  classes : int;
  accuracy : float;
}

let train_fn solver params =
  match solver with
  | Modelset.Ovr -> fun p -> Tessera_svm.Linear.train_ovr ~params p
  | Modelset.Crammer_singer -> fun p -> Tessera_svm.Cs.train ~params p

let levels = [ Plan.Cold; Plan.Warm; Plan.Hot ]

let kfold_accuracy ?(k = 5) ?(solver = Modelset.Crammer_singer) records =
  List.filter_map
    (fun level ->
      let ts = Trainset.build ~level records in
      let p = Trainset.problem ts in
      let n = Problem.n_instances p in
      if n < 2 * k || Problem.n_classes p < 2 then None
      else
        Some
          {
            level;
            instances = n;
            classes = Problem.n_classes p;
            accuracy =
              Metrics.cross_validate ~k
                ~train:(train_fn solver Tessera_svm.Linear.default_params)
                p;
          })
    levels

let loo_benchmark_accuracy ?(solver = Modelset.Crammer_singer) outcomes =
  List.map
    (fun (excluded : Collection.outcome) ->
      let train_records =
        Training.records_of
          (List.filter
             (fun (o : Collection.outcome) ->
               o.Collection.tag <> excluded.Collection.tag)
             outcomes)
      in
      let test_records = Training.records_of [ excluded ] in
      let per_level =
        List.filter_map
          (fun level ->
            let train_ts = Trainset.build ~level train_records in
            let train_p = Trainset.problem train_ts in
            if Problem.n_classes train_p < 2 then None
            else begin
              let model =
                train_fn solver Tessera_svm.Linear.default_params train_p
              in
              (* score on the held-out benchmark's ranked instances,
                 renormalized with the TRAINING scaling, and counting a
                 prediction as correct when it picks any label whose
                 modifier matches the held-out best *)
              let ranked = Tessera_dataproc.Rank.rank ~level test_records in
              if ranked = [] then None
              else begin
                let correct = ref 0 in
                List.iter
                  (fun (r : Tessera_dataproc.Rank.ranked) ->
                    let predicted =
                      Trainset.predictor
                        ~scaling:train_ts.Trainset.scaling
                        ~labels:train_ts.Trainset.labels ~model
                        r.Tessera_dataproc.Rank.features
                    in
                    if
                      Tessera_modifiers.Modifier.equal predicted
                        r.Tessera_dataproc.Rank.modifier
                    then incr correct)
                  ranked;
                Some
                  {
                    level;
                    instances = List.length ranked;
                    classes = Problem.n_classes train_p;
                    accuracy =
                      float_of_int !correct /. float_of_int (List.length ranked);
                  }
              end
            end)
          levels
      in
      (excluded.Collection.tag, per_level))
    outcomes

let report fmt rows =
  Format.fprintf fmt "%-10s" "split";
  List.iter
    (fun l -> Format.fprintf fmt " %14s" (Plan.level_name l))
    levels;
  Format.fprintf fmt "@.";
  List.iter
    (fun (name, accs) ->
      Format.fprintf fmt "%-10s" name;
      List.iter
        (fun level ->
          match List.find_opt (fun a -> a.level = level) accs with
          | Some a ->
              Format.fprintf fmt " %6.1f%% (%3d)" (100.0 *. a.accuracy)
                a.instances
          | None -> Format.fprintf fmt " %14s" "-")
        levels;
      Format.fprintf fmt "@.")
    rows
