lib/codegen/isa.mli: Format Tessera_il Tessera_vm
