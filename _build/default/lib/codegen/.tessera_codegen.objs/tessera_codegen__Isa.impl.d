lib/codegen/isa.ml: Array Format Tessera_il Tessera_vm
