lib/codegen/lower.mli: Isa Tessera_il Tessera_vm
