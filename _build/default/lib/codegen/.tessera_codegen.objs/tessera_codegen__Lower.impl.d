lib/codegen/lower.ml: Array Isa List Tessera_il Tessera_vm
