lib/codegen/exec.ml: Array Int64 Isa Tessera_il Tessera_vm
