lib/codegen/exec.mli: Isa Tessera_il Tessera_vm
