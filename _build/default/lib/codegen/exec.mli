(** Native-code executor — the VM's fast path.

    Runs a compiled method on the simulated CPU, charging each
    instruction's pre-computed static cost (plus dynamic components such
    as array-copy lengths).  Value semantics are the shared
    [Tessera_vm.Semantics] primitives, so results are bit-identical to the
    interpreter's. *)

type context = {
  classes : Tessera_il.Classdef.t array;
  charge : int -> unit;
  invoke : int -> Tessera_vm.Values.t array -> Tessera_vm.Values.t;
  fuel : int ref;
}

exception Out_of_fuel

val run : context -> Isa.compiled -> Tessera_vm.Values.t array -> Tessera_vm.Values.t
(** Execute one invocation of a compiled method.  Raises
    [Tessera_vm.Values.Trap] if an exception escapes. *)
