(** The target instruction set.

    "Native code" in the simulation is a compact stack-machine program:
    close enough to a real back end that instruction count and shape are
    determined by the optimized IL, while keeping lowering simple and
    provably semantics-preserving.  Per-instruction cycle costs are
    computed once at code-generation time (including optimization-flag
    discounts and register-allocation quality) and stored alongside the
    instructions. *)

module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode

type instr =
  | Const of Types.t * int64
  | Load_local of int
  | Store_local of int * Types.t
  | Inc_local of int * int64 * Types.t
  | Field_load of int
  | Field_store of int
  | Elem_load
  | Elem_store
  | Binop of Opcode.t * Types.t
  | Negate of Types.t
  | Cast_to of Opcode.cast_kind * Types.t
  | Checkcast of int
  | New_obj of int
  | New_arr of Types.t
  | New_multi of Types.t
  | Instance_of of int
  | Monitor of bool  (** [true] when a monitored object is on the stack *)
  | Invoke of int * int * Types.t  (** callee id, arg count, return type *)
  | Mixed_op of int * Types.t  (** operand count, result type *)
  | Bounds_chk
  | Arr_copy
  | Arr_cmp
  | Arr_len
  | Pop
  | Jump of int  (** absolute pc *)
  | Jump_if_false of int
  | Ret of bool  (** [true] when a return value is on the stack *)
  | Throw_instr

type compiled = {
  method_name : string;
  instrs : instr array;
  costs : int array;  (** static cycles per instruction *)
  block_of_pc : int array;  (** source block of each pc, for handlers *)
  block_start : int array;  (** entry pc of each source block *)
  handler_of_block : int array;  (** handler block id or -1 *)
  local_types : Types.t array;
  ret : Types.t;
  nargs : int;
  sync_method : bool;
  quality : Tessera_vm.Cost.codegen_quality;
  code_size : int;  (** = Array.length instrs; a code-bloat measure *)
}

val pp_instr : Format.formatter -> instr -> unit
val pp : Format.formatter -> compiled -> unit
