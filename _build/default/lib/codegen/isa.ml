module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode

type instr =
  | Const of Types.t * int64
  | Load_local of int
  | Store_local of int * Types.t
  | Inc_local of int * int64 * Types.t
  | Field_load of int
  | Field_store of int
  | Elem_load
  | Elem_store
  | Binop of Opcode.t * Types.t
  | Negate of Types.t
  | Cast_to of Opcode.cast_kind * Types.t
  | Checkcast of int
  | New_obj of int
  | New_arr of Types.t
  | New_multi of Types.t
  | Instance_of of int
  | Monitor of bool
  | Invoke of int * int * Types.t
  | Mixed_op of int * Types.t
  | Bounds_chk
  | Arr_copy
  | Arr_cmp
  | Arr_len
  | Pop
  | Jump of int
  | Jump_if_false of int
  | Ret of bool
  | Throw_instr

type compiled = {
  method_name : string;
  instrs : instr array;
  costs : int array;
  block_of_pc : int array;
  block_start : int array;
  handler_of_block : int array;
  local_types : Types.t array;
  ret : Types.t;
  nargs : int;
  sync_method : bool;
  quality : Tessera_vm.Cost.codegen_quality;
  code_size : int;
}

let pp_instr fmt = function
  | Const (ty, v) -> Format.fprintf fmt "const.%a %Ld" Types.pp ty v
  | Load_local i -> Format.fprintf fmt "ldloc %d" i
  | Store_local (i, ty) -> Format.fprintf fmt "stloc.%a %d" Types.pp ty i
  | Inc_local (i, d, _) -> Format.fprintf fmt "incloc %d, %Ld" i d
  | Field_load i -> Format.fprintf fmt "ldfld %d" i
  | Field_store i -> Format.fprintf fmt "stfld %d" i
  | Elem_load -> Format.fprintf fmt "ldelem"
  | Elem_store -> Format.fprintf fmt "stelem"
  | Binop (op, ty) -> Format.fprintf fmt "%s.%a" (Opcode.name op) Types.pp ty
  | Negate ty -> Format.fprintf fmt "neg.%a" Types.pp ty
  | Cast_to (k, _) -> Format.fprintf fmt "%s" (Opcode.name (Opcode.Cast k))
  | Checkcast c -> Format.fprintf fmt "checkcast %d" c
  | New_obj c -> Format.fprintf fmt "new %d" c
  | New_arr ty -> Format.fprintf fmt "newarr.%a" Types.pp ty
  | New_multi ty -> Format.fprintf fmt "newmulti.%a" Types.pp ty
  | Instance_of c -> Format.fprintf fmt "instanceof %d" c
  | Monitor b -> Format.fprintf fmt "monitor%s" (if b then "" else ".none")
  | Invoke (m, n, ty) -> Format.fprintf fmt "invoke m%d/%d -> %a" m n Types.pp ty
  | Mixed_op (n, ty) -> Format.fprintf fmt "mixed/%d -> %a" n Types.pp ty
  | Bounds_chk -> Format.fprintf fmt "boundschk"
  | Arr_copy -> Format.fprintf fmt "arrcopy"
  | Arr_cmp -> Format.fprintf fmt "arrcmp"
  | Arr_len -> Format.fprintf fmt "arrlen"
  | Pop -> Format.fprintf fmt "pop"
  | Jump t -> Format.fprintf fmt "jmp %d" t
  | Jump_if_false t -> Format.fprintf fmt "jz %d" t
  | Ret v -> Format.fprintf fmt "ret%s" (if v then ".v" else "")
  | Throw_instr -> Format.fprintf fmt "throw"

let pp fmt c =
  Format.fprintf fmt "@[<v 2>compiled %S (%d instrs, quality %s):"
    c.method_name c.code_size
    (match c.quality with
    | Tessera_vm.Cost.Q_base -> "base"
    | Tessera_vm.Cost.Q_regalloc -> "regalloc"
    | Tessera_vm.Cost.Q_full -> "full");
  Array.iteri
    (fun pc i ->
      Format.fprintf fmt "@,%4d: %a  ; %d cyc" pc pp_instr i c.costs.(pc))
    c.instrs;
  Format.fprintf fmt "@]"
