(** IL-tree to native-code lowering.

    Lowering is purely syntax-directed: one IL node becomes one
    instruction (plus its operands), so every node the optimizer removes
    is an instruction — and its cycles — removed from the compiled
    method.  Optimization flags on nodes become cycle discounts on the
    corresponding instructions; the code generator itself never
    re-derives facts the optimizer proved. *)

val compile :
  ?quality:Tessera_vm.Cost.codegen_quality ->
  ?target:Tessera_vm.Target.t ->
  Tessera_il.Meth.t ->
  Isa.compiled
(** Lower a method for a back-end target (default {!Tessera_vm.Target.zircon}).
    Raises [Invalid_argument] on IR the validator would reject (unknown
    arities). *)

val static_cycle_estimate : Isa.compiled -> int
(** Sum of static per-instruction costs — a crude code-quality metric used
    by diagnostics and tests (dynamic cost depends on control flow). *)
