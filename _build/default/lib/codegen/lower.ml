module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Node = Tessera_il.Node
module Block = Tessera_il.Block
module Meth = Tessera_il.Meth
module Cost = Tessera_vm.Cost
open Isa

module Target = Tessera_vm.Target

type emitter = {
  mutable instrs : (instr * int * int) list;  (* instr, cost, block id; reversed *)
  mutable pc : int;
  mutable patches : (int * int) list;  (* instr index -> target block *)
  quality : Cost.codegen_quality;
  target : Target.t;
}

let emit e block instr cost =
  e.instrs <- (instr, cost, block) :: e.instrs;
  e.pc <- e.pc + 1

let emit_patched e block instr =
  (* Branch target patched later; the placeholder target is the block id. *)
  e.patches <- (e.pc, match instr with Jump t | Jump_if_false t -> t | _ -> -1) :: e.patches;
  emit e block instr 1

let node_cost e (n : Node.t) =
  max 0 (Target.op_cost e.target n.op n.ty - Target.flag_discount e.target n)

let rec lower_value e (m : Meth.t) bid (n : Node.t) =
  let c = node_cost e n in
  match n.op with
  | Opcode.Loadconst -> emit e bid (Const (n.ty, n.const)) c
  | Opcode.Load -> (
      match Array.length n.args with
      | 0 -> emit e bid (Load_local n.sym) (e.target.Target.local_access ~codegen_quality:e.quality)
      | 1 ->
          lower_value e m bid n.args.(0);
          emit e bid (Field_load n.sym) (c + 2)
      | _ ->
          lower_value e m bid n.args.(0);
          lower_value e m bid n.args.(1);
          emit e bid Elem_load (c + 4))
  | Opcode.Store -> (
      match Array.length n.args with
      | 1 ->
          lower_value e m bid n.args.(0);
          emit e bid
            (Store_local (n.sym, m.symbols.(n.sym).Tessera_il.Symbol.ty))
            (e.target.Target.local_access ~codegen_quality:e.quality)
      | 2 ->
          lower_value e m bid n.args.(0);
          lower_value e m bid n.args.(1);
          emit e bid (Field_store n.sym) (c + 2)
      | _ ->
          lower_value e m bid n.args.(0);
          lower_value e m bid n.args.(1);
          lower_value e m bid n.args.(2);
          emit e bid Elem_store (c + 4))
  | Opcode.Inc ->
      emit e bid
        (Inc_local (n.sym, n.const, m.symbols.(n.sym).Tessera_il.Symbol.ty))
        (e.target.Target.local_access ~codegen_quality:e.quality)
  | Opcode.Neg ->
      lower_value e m bid n.args.(0);
      emit e bid (Negate n.ty) c
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem | Opcode.Or
  | Opcode.And | Opcode.Xor | Opcode.Shift _ | Opcode.Compare _ ->
      lower_value e m bid n.args.(0);
      lower_value e m bid n.args.(1);
      emit e bid (Binop (n.op, n.ty)) c
  | Opcode.Cast Opcode.C_check ->
      lower_value e m bid n.args.(0);
      emit e bid (Checkcast n.sym) c
  | Opcode.Cast k ->
      lower_value e m bid n.args.(0);
      emit e bid (Cast_to (k, n.ty)) c
  | Opcode.New -> emit e bid (New_obj n.sym) c
  | Opcode.Newarray ->
      lower_value e m bid n.args.(0);
      emit e bid (New_arr (Types.of_index n.sym)) c
  | Opcode.Newmultiarray ->
      lower_value e m bid n.args.(0);
      lower_value e m bid n.args.(1);
      emit e bid (New_multi (Types.of_index n.sym)) c
  | Opcode.Instanceof ->
      lower_value e m bid n.args.(0);
      emit e bid (Instance_of n.sym) c
  | Opcode.Synchronization _ ->
      let has_obj = Array.length n.args > 0 in
      if has_obj then lower_value e m bid n.args.(0);
      emit e bid (Monitor has_obj) c
  | Opcode.Throw_op ->
      Array.iter (fun k -> lower_stmt e m bid k) n.args;
      emit e bid (Mixed_op (0, Types.Void)) c
  | Opcode.Branch_op -> lower_value e m bid n.args.(0)
  | Opcode.Call ->
      Array.iter (fun k -> lower_value e m bid k) n.args;
      emit e bid (Invoke (n.sym, Array.length n.args, n.ty)) e.target.Target.call_overhead
  | Opcode.Arrayop Opcode.Bounds_check ->
      lower_value e m bid n.args.(0);
      lower_value e m bid n.args.(1);
      emit e bid Bounds_chk c
  | Opcode.Arrayop Opcode.Array_copy ->
      lower_value e m bid n.args.(0);
      lower_value e m bid n.args.(1);
      lower_value e m bid n.args.(2);
      emit e bid Arr_copy c
  | Opcode.Arrayop Opcode.Array_cmp ->
      lower_value e m bid n.args.(0);
      lower_value e m bid n.args.(1);
      emit e bid Arr_cmp c
  | Opcode.Arrayop Opcode.Array_length ->
      lower_value e m bid n.args.(0);
      emit e bid Arr_len c
  | Opcode.Mixedop ->
      Array.iter (fun k -> lower_value e m bid k) n.args;
      emit e bid (Mixed_op (Array.length n.args, n.ty)) c

and lower_stmt e m bid (n : Node.t) =
  lower_value e m bid n;
  if not (Types.equal n.ty Types.Void) then emit e bid Pop 0

let compile ?(quality = Cost.Q_base) ?(target = Target.zircon) (m : Meth.t) =
  let e = { instrs = []; pc = 0; patches = []; quality; target } in
  let nblocks = Array.length m.blocks in
  let block_start = Array.make nblocks (-1) in
  Array.iteri
    (fun bi (b : Block.t) ->
      block_start.(bi) <- e.pc;
      List.iter (fun s -> lower_stmt e m bi s) b.Block.stmts;
      match b.Block.term with
      | Block.Goto t ->
          e.patches <- (e.pc, t) :: e.patches;
          emit e bi (Jump t) (if t = bi + 1 then 0 else 1)
      | Block.If { cond; if_true; if_false } ->
          lower_value e m bi cond;
          emit_patched e bi (Jump_if_false if_false);
          emit_patched e bi (Jump if_true)
      | Block.Return None -> emit e bi (Ret false) 2
      | Block.Return (Some v) ->
          lower_value e m bi v;
          emit e bi (Ret true) 2
      | Block.Throw v ->
          lower_stmt e m bi v;
          emit e bi Throw_instr (Target.op_cost e.target Opcode.Throw_op Types.Void))
    m.blocks;
  let n = e.pc in
  let instrs = Array.make n Pop in
  let costs = Array.make n 0 in
  let block_of_pc = Array.make n 0 in
  List.iteri
    (fun i (instr, cost, blk) ->
      let pc = n - 1 - i in
      instrs.(pc) <- instr;
      costs.(pc) <- cost;
      block_of_pc.(pc) <- blk)
    e.instrs;
  List.iter
    (fun (pc, target_block) ->
      match instrs.(pc) with
      | Jump _ -> instrs.(pc) <- Jump block_start.(target_block)
      | Jump_if_false _ -> instrs.(pc) <- Jump_if_false block_start.(target_block)
      | _ -> ())
    e.patches;
  let handler_of_block =
    Array.map
      (fun (b : Block.t) -> match b.Block.handler with Some h -> h | None -> -1)
      m.blocks
  in
  {
    method_name = m.name;
    instrs;
    costs;
    block_of_pc;
    block_start;
    handler_of_block;
    local_types = Array.map (fun (s : Tessera_il.Symbol.t) -> s.ty) m.symbols;
    ret = m.ret;
    nargs = Meth.arg_count m;
    sync_method = m.attrs.Meth.synchronized;
    quality;
    code_size = n;
  }

let static_cycle_estimate (c : compiled) =
  Array.fold_left ( + ) 0 c.costs
