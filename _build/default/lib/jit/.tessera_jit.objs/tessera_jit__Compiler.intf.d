lib/jit/compiler.mli: Tessera_codegen Tessera_features Tessera_il Tessera_modifiers Tessera_opt Tessera_vm
