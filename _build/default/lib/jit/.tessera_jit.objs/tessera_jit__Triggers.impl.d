lib/jit/triggers.ml: Tessera_features Tessera_opt
