lib/jit/compiler.ml: Tessera_codegen Tessera_features Tessera_il Tessera_modifiers Tessera_opt Tessera_vm
