lib/jit/engine.ml: Array Compiler Int64 List Tessera_codegen Tessera_il Tessera_modifiers Tessera_opt Tessera_vm Triggers
