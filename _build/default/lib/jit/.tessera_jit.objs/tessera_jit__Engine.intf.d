lib/jit/engine.mli: Compiler Tessera_il Tessera_modifiers Tessera_opt Tessera_vm Triggers
