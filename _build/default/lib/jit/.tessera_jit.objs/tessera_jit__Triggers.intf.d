lib/jit/triggers.mli: Tessera_features Tessera_il Tessera_opt
