(** The execution engine: a simulated JVM tying together the interpreter,
    the JIT compiler, the adaptive compilation controller, and an
    asynchronous compilation thread.

    Timing model: the application runs on a virtual core whose cycles are
    the {!Tessera_vm.Clock}.  Compilations run on a separate compilation
    thread: a request made at time [t] starts when the thread is free,
    takes the compilation's simulated cycles, and the new code installs at
    completion time — until then the method keeps running in its previous
    implementation (usually the interpreter).  A configurable contention
    factor charges a fraction of each compilation to the application
    thread, modelling shared pipeline/cache resources ("the compiler
    competes with the application for the same resources"). *)

module Program = Tessera_il.Program
module Values = Tessera_vm.Values
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier

type impl = Interpreted | Compiled of Compiler.compilation

type method_state = {
  mutable impl : impl;
  mutable pending : (Compiler.compilation * int64) option;
      (** compiled code waiting for its install time *)
  mutable invocations : int;
  mutable acc_cycles : int64;  (** accumulated inclusive execution cycles *)
  mutable compile_count : int;
  mutable no_more : bool;  (** controller gave up on recompiling this *)
  mutable loop_cls : Triggers.loop_class option;  (** cached *)
}

type config = {
  async_compile : bool;
  instrument : bool;  (** per-invocation TSC enter/exit instrumentation *)
  contention : float;  (** fraction of compile cycles charged to the app *)
  compile_threads : int;
      (** parallel compilation threads: the queue drains proportionally
          faster, while compilation-time metrics still count total
          cycles *)
  trigger_scale : float;
      (** multiplier on the adaptive controller's level-up triggers; data
          collection raises it so methods dwell at each level long enough
          to explore modifiers there *)
  target : Tessera_vm.Target.t;
      (** the back-end the JIT generates code for (platform-sensitivity
          studies deploy the same models on different targets) *)
  fuel_per_invocation : int;
  clock_seed : int64;
  adaptive : bool;  (** run the built-in adaptive controller *)
}

val default_config : config

type t

type callbacks = {
  choose_modifier : (t -> meth_id:int -> level:Plan.level -> Modifier.t option) option;
      (** consulted before each compilation; [None] from the callback
          means "do not compile now and stop recompiling this method".
          Unset: always the null modifier. *)
  on_compiled : (t -> meth_id:int -> Compiler.compilation -> unit) option;
  on_sample : (t -> meth_id:int -> cycles:int64 -> valid:bool -> unit) option;
      (** per-invocation instrumentation sample with {e exclusive} (self)
          cycles — callee time is reported against the callees; [valid] is
          false when the enter/exit processor ids differ (TSC-drift
          discard) *)
  post_invoke : (t -> meth_id:int -> unit) option;
      (** extra controller logic (data collection uses this to trigger
          fixed-threshold recompilations) *)
}

val no_callbacks : callbacks

val create : ?config:config -> ?callbacks:callbacks -> Program.t -> t

val program : t -> Program.t
val state : t -> int -> method_state
val clock_now : t -> int64

val invoke_entry : t -> Values.t array -> (Values.t, Values.trap) result
(** One invocation of the program's entry method, with trap capture and a
    fresh fuel budget. *)

val invoke_method : t -> int -> Values.t array -> (Values.t, Values.trap) result
(** Invoke an arbitrary method from outside (used by tests/examples). *)

val request_compile :
  t -> meth_id:int -> level:Plan.level -> ?modifier:Modifier.t -> unit -> unit
(** Explicit compilation request (the controller's and collector's tool).
    Consults [choose_modifier] only when [modifier] is not given. *)

(** {1 Metrics} *)

val app_cycles : t -> int64
val total_compile_cycles : t -> int64
val compile_count : t -> int
val compiles_by_level : t -> (Plan.level * int) list
val methods_compiled : t -> int
