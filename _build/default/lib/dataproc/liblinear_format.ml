module Sparse = Tessera_svm.Sparse
module Problem = Tessera_svm.Problem

type instance = { label : int; x : Sparse.t }

let instance_to_line i =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (string_of_int i.label);
  Array.iter
    (fun (idx, v) ->
      (* 1-based component indices in the file format *)
      Buffer.add_string buf (Printf.sprintf " %d:%.17g" (idx + 1) v))
    i.x;
  Buffer.contents buf

let line_to_instance line =
  match
    String.split_on_char ' ' (String.trim line) |> List.filter (fun t -> t <> "")
  with
  | [] -> failwith "Liblinear_format: empty line"
  | label :: feats ->
      let label =
        try int_of_string label
        with _ -> failwith ("Liblinear_format: bad label " ^ label)
      in
      let pairs =
        List.map
          (fun tok ->
            match String.index_opt tok ':' with
            | None -> failwith ("Liblinear_format: bad component " ^ tok)
            | Some i ->
                let idx = int_of_string (String.sub tok 0 i) in
                let v =
                  float_of_string (String.sub tok (i + 1) (String.length tok - i - 1))
                in
                if idx < 1 then failwith "Liblinear_format: index must be >= 1";
                (idx - 1, v))
          feats
      in
      { label; x = Sparse.of_list pairs }

let write instances =
  String.concat "" (List.map (fun i -> instance_to_line i ^ "\n") instances)

let parse s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map line_to_instance

let save instances path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (write instances))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let to_problem instances =
  let x = Array.of_list (List.map (fun i -> i.x) instances) in
  let y = Array.of_list (List.map (fun i -> i.label) instances) in
  Problem.make x y
