module Record = Tessera_collect.Record
module Plan = Tessera_opt.Plan
module Features = Tessera_features.Features
module Modifier = Tessera_modifiers.Modifier

type level_stats = {
  level : Plan.level;
  data_instances : int;
  unique_classes : int;
  unique_feature_vectors : int;
  training_instances : int;
  training_classes : int;
  training_feature_vectors : int;
}

type t = {
  level : Plan.level;
  scaling : Normalize.scaling;
  labels : Labels.t;
  instances : Liblinear_format.instance list;
  stats : level_stats;
}

let build ?(max_per_vector = 3) ?(tolerance = 0.95) ~level records =
  let level_records =
    List.filter (fun (r : Record.t) -> r.Record.level = level) records
  in
  let ranked = Rank.rank ~max_per_vector ~tolerance ~level records in
  let scaling =
    Normalize.fit
      (match level_records with
      | [] -> [ Array.make Features.dim 0 ]
      | rs -> List.map (fun (r : Record.t) -> Features.to_array r.Record.features) rs)
  in
  let labels = Labels.create () in
  let instances =
    List.map
      (fun (r : Rank.ranked) ->
        {
          Liblinear_format.label = Labels.label_of labels r.Rank.modifier;
          x = Normalize.to_sparse scaling (Features.to_array r.Rank.features);
        })
      ranked
  in
  let ranked_vectors = Hashtbl.create 64 in
  List.iter
    (fun (r : Rank.ranked) ->
      Hashtbl.replace ranked_vectors (Features.to_array r.Rank.features) ())
    ranked;
  let stats =
    {
      level;
      data_instances = List.length level_records;
      unique_classes = Rank.unique_classes level_records;
      unique_feature_vectors = Rank.unique_feature_vectors level_records;
      training_instances = List.length instances;
      training_classes = Labels.size labels;
      training_feature_vectors = Hashtbl.length ranked_vectors;
    }
  in
  { level; scaling; labels; instances; stats }

let problem t =
  (* force the feature dimension so models are compatible even when some
     trailing components were always zero *)
  let x = Array.of_list (List.map (fun (i : Liblinear_format.instance) -> i.Liblinear_format.x) t.instances) in
  let y = Array.of_list (List.map (fun (i : Liblinear_format.instance) -> i.Liblinear_format.label) t.instances) in
  Tessera_svm.Problem.make ~n_features:Features.dim x y

let predictor ~scaling ~labels ~model features =
  let x = Normalize.to_sparse scaling (Features.to_array features) in
  let label = Tessera_svm.Model.predict model x in
  match Labels.modifier_of labels label with
  | Some m -> m
  | None -> Modifier.null
