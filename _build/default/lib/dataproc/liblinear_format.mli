(** The LIBLINEAR textual sparse-matrix dataset format (Figure 4):
    one instance per line, [label idx:val idx:val ...] with 1-based
    component indices and zero-valued components omitted. *)

type instance = { label : int; x : Tessera_svm.Sparse.t }

val instance_to_line : instance -> string

val line_to_instance : string -> instance
(** Raises [Failure] on malformed lines. *)

val write : instance list -> string
val parse : string -> instance list
val save : instance list -> string -> unit
val load : string -> instance list

val to_problem : instance list -> Tessera_svm.Problem.t
