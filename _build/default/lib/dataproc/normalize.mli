(** Feature normalization to [0,1] (Section 6, Eq. 3):
    [c_norm = (c - c_min) / (c_max - c_min)] per component, eliminating
    the dominance of large numeric ranges when the SVM is trained.

    The shift/scale parameters are persisted to a {e scaling file} so the
    compiler-side integration can renormalize feature vectors with
    exactly the parameters used during training (Section 7). *)

type scaling = { mins : float array; maxs : float array }

val fit : int array list -> scaling
(** Per-component min/max over raw (integer) feature vectors. *)

val apply : scaling -> int array -> float array
(** Eq. (3); components with a degenerate range ([max = min]) map to 0.
    Values outside the fitted range clamp to [0,1] (unseen methods can
    exceed the training range). *)

val to_sparse : scaling -> int array -> Tessera_svm.Sparse.t

(** {1 Scaling file} *)

val to_string : scaling -> string
(** Text format, one line per component: [index min max]. *)

val of_string : string -> scaling
val save : scaling -> string -> unit
val load : string -> scaling

val equal : scaling -> scaling -> bool
