type scaling = { mins : float array; maxs : float array }

let fit vectors =
  match vectors with
  | [] -> invalid_arg "Normalize.fit: no data"
  | first :: _ ->
      let dim = Array.length first in
      let mins = Array.make dim infinity in
      let maxs = Array.make dim neg_infinity in
      List.iter
        (fun v ->
          if Array.length v <> dim then invalid_arg "Normalize.fit: ragged data";
          Array.iteri
            (fun i x ->
              let x = float_of_int x in
              if x < mins.(i) then mins.(i) <- x;
              if x > maxs.(i) then maxs.(i) <- x)
            v)
        vectors;
      { mins; maxs }

let apply s v =
  Array.mapi
    (fun i x ->
      let x = float_of_int x in
      let range = s.maxs.(i) -. s.mins.(i) in
      if range <= 0.0 then 0.0
      else Float.max 0.0 (Float.min 1.0 ((x -. s.mins.(i)) /. range)))
    v

let to_sparse s v = Tessera_svm.Sparse.of_dense (apply s v)

let to_string s =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i mn -> Buffer.add_string buf (Printf.sprintf "%d %.17g %.17g\n" i mn s.maxs.(i)))
    s.mins;
  Buffer.contents buf

let of_string str =
  let lines =
    String.split_on_char '\n' str |> List.filter (fun l -> String.trim l <> "")
  in
  let triples =
    List.map
      (fun l ->
        match
          String.split_on_char ' ' (String.trim l)
          |> List.filter (fun x -> x <> "")
        with
        | [ i; mn; mx ] -> (int_of_string i, float_of_string mn, float_of_string mx)
        | _ -> failwith ("Normalize.of_string: bad line " ^ l))
      lines
  in
  let dim = List.length triples in
  let mins = Array.make dim 0.0 and maxs = Array.make dim 0.0 in
  List.iter
    (fun (i, mn, mx) ->
      if i < 0 || i >= dim then failwith "Normalize.of_string: bad index";
      mins.(i) <- mn;
      maxs.(i) <- mx)
    triples;
  { mins; maxs }

let save s path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string s))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let equal a b = a.mins = b.mins && a.maxs = b.maxs
