(** Class-label remapping (Sections 6–7).

    LIBLINEAR requires class labels in [1, 2^31 - 1], so the 58-bit
    modifier space is remapped into that range: each distinct modifier
    seen in the training data gets a small positive label, and a lookup
    table — loaded during model initialization on the compiler side —
    maps predicted labels back to full modifier bit patterns. *)

module Modifier = Tessera_modifiers.Modifier

type t

val create : unit -> t

val label_of : t -> Modifier.t -> int
(** Allocates 1, 2, 3, ... on first sight. *)

val modifier_of : t -> int -> Modifier.t option

val size : t -> int

val to_string : t -> string
(** One line per entry: [label modifier-bit-string]. *)

val of_string : string -> t
val save : t -> string -> unit
val load : string -> t
val equal : t -> t -> bool
