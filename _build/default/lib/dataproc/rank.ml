module Record = Tessera_collect.Record
module Features = Tessera_features.Features
module Modifier = Tessera_modifiers.Modifier
module Plan = Tessera_opt.Plan
module Triggers = Tessera_jit.Triggers

type ranked = {
  features : Features.t;
  level : Plan.level;
  modifier : Modifier.t;
  value : float;
}

let value = Tessera_collect.Rank_value.value

let rank ?(max_per_vector = 3) ?(tolerance = 0.95) ~level records =
  let records =
    List.filter
      (fun (r : Record.t) -> r.Record.level = level && r.Record.invocations > 0)
      records
  in
  (* lexicographic sort by feature vector aggregates equal vectors *)
  let sorted =
    List.stable_sort
      (fun (a : Record.t) (b : Record.t) ->
        Features.compare a.Record.features b.Record.features)
      records
  in
  let groups = ref [] in
  let cur = ref [] in
  List.iter
    (fun (r : Record.t) ->
      match !cur with
      | [] -> cur := [ r ]
      | (first : Record.t) :: _ ->
          if Features.equal first.Record.features r.Record.features then
            cur := r :: !cur
          else begin
            groups := List.rev !cur :: !groups;
            cur := [ r ]
          end)
    sorted;
  if !cur <> [] then groups := List.rev !cur :: !groups;
  List.concat_map
    (fun group ->
      (* among experiments on the same feature vector keep the best value
         per distinct modifier, then apply the 95%/top-3 rule *)
      let by_modifier = Hashtbl.create 16 in
      List.iter
        (fun (r : Record.t) ->
          let v = value r in
          match Hashtbl.find_opt by_modifier r.Record.modifier with
          | Some v' when v' <= v -> ()
          | _ -> Hashtbl.replace by_modifier r.Record.modifier v)
        group;
      let scored =
        Hashtbl.fold (fun m v acc -> (m, v) :: acc) by_modifier []
        |> List.sort (fun (_, a) (_, b) -> compare a b)
      in
      match scored with
      | [] -> []
      | (_, best) :: _ ->
          let features = (List.hd group).Record.features in
          scored
          |> List.filteri (fun i _ -> i < max_per_vector)
          |> List.filter (fun (_, v) ->
                 v <= 0.0 || best /. v >= tolerance || v = best)
          |> List.map (fun (modifier, v) ->
                 { features; level; modifier; value = v }))
    (List.rev !groups)

let unique_feature_vectors records =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Record.t) ->
      Hashtbl.replace tbl (Features.to_array r.Record.features) ())
    records;
  Hashtbl.length tbl

let unique_classes records =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Record.t) ->
      Hashtbl.replace tbl (Modifier.to_bits r.Record.modifier) ())
    records;
  Hashtbl.length tbl
