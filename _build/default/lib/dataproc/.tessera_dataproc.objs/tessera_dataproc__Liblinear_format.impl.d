lib/dataproc/liblinear_format.ml: Array Buffer Fun List Printf String Tessera_svm
