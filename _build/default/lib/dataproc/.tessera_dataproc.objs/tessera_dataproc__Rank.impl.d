lib/dataproc/rank.ml: Hashtbl List Tessera_collect Tessera_features Tessera_jit Tessera_modifiers Tessera_opt
