lib/dataproc/liblinear_format.mli: Tessera_svm
