lib/dataproc/normalize.ml: Array Buffer Float Fun List Printf String Tessera_svm
