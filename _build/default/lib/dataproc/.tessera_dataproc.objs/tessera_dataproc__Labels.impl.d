lib/dataproc/labels.ml: Fun Hashtbl List Printf String Tessera_modifiers
