lib/dataproc/trainset.ml: Array Hashtbl Labels Liblinear_format List Normalize Rank Tessera_collect Tessera_features Tessera_modifiers Tessera_opt Tessera_svm
