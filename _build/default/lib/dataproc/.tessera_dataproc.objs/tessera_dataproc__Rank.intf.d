lib/dataproc/rank.mli: Tessera_collect Tessera_features Tessera_modifiers Tessera_opt
