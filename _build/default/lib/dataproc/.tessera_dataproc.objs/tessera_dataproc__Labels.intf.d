lib/dataproc/labels.mli: Tessera_modifiers
