lib/dataproc/normalize.mli: Tessera_svm
