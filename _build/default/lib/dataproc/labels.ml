module Modifier = Tessera_modifiers.Modifier

type t = {
  by_mod : (int64, int) Hashtbl.t;
  by_label : (int, Modifier.t) Hashtbl.t;
  mutable next : int;
}

let create () =
  { by_mod = Hashtbl.create 64; by_label = Hashtbl.create 64; next = 1 }

let label_of t m =
  let bits = Modifier.to_bits m in
  match Hashtbl.find_opt t.by_mod bits with
  | Some l -> l
  | None ->
      let l = t.next in
      if l > 0x7FFFFFFF then failwith "Labels: label space exhausted";
      t.next <- l + 1;
      Hashtbl.add t.by_mod bits l;
      Hashtbl.add t.by_label l m;
      l

let modifier_of t l = Hashtbl.find_opt t.by_label l

let size t = Hashtbl.length t.by_label

let to_string t =
  let entries =
    Hashtbl.fold (fun l m acc -> (l, m) :: acc) t.by_label []
    |> List.sort compare
  in
  String.concat ""
    (List.map
       (fun (l, m) -> Printf.sprintf "%d %s\n" l (Modifier.to_string m))
       entries)

let of_string s =
  let t = create () in
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.iter (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ l; bits ] ->
             let l = int_of_string l in
             let m = Modifier.of_string bits in
             Hashtbl.replace t.by_mod (Modifier.to_bits m) l;
             Hashtbl.replace t.by_label l m;
             if l >= t.next then t.next <- l + 1
         | _ -> failwith ("Labels.of_string: bad line " ^ line));
  t

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let equal a b =
  a.next = b.next
  && Hashtbl.length a.by_label = Hashtbl.length b.by_label
  && Hashtbl.fold
       (fun l m acc ->
         acc
         && match Hashtbl.find_opt b.by_label l with
            | Some m' -> Modifier.equal m m'
            | None -> false)
       a.by_label true
