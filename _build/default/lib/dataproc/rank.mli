(** Ranking of experiment records (Section 6, Eq. 2).

    Records are sorted lexicographically by feature vector to aggregate
    every experiment performed on the same (unique) feature vector, then
    each record is scored with

    {v V_i = R_i / I_i + C_i / T_h v}

    — the average cycles of one invocation plus the compilation cost
    normalized by the level's compilation trigger.  Smaller is better.
    For each unique feature vector the best few modifiers are selected:
    at most [max_per_vector] (3 in the paper) and only those whose
    ranking value is within [tolerance] (95%) of the best one. *)

module Record = Tessera_collect.Record

type ranked = {
  features : Tessera_features.Features.t;
  level : Tessera_opt.Plan.level;
  modifier : Tessera_modifiers.Modifier.t;
  value : float;  (** V_i *)
}

val value : Record.t -> float
(** Eq. (2) for one record (see {!Tessera_collect.Rank_value}).
    Requires [invocations > 0]. *)

val rank :
  ?max_per_vector:int ->
  ?tolerance:float ->
  level:Tessera_opt.Plan.level ->
  Record.t list ->
  ranked list
(** Filter to one level, aggregate by unique feature vector, select.
    [tolerance] is the paper's 95% rule: a modifier qualifies when
    [best /. value >= tolerance] (values are costs, smaller better). *)

val unique_feature_vectors : Record.t list -> int
val unique_classes : Record.t list -> int
(** Distinct modifiers — the "unique classes" column of Table 4. *)
