(** The full training-set pipeline of Section 6: merged archives →
    ranking → normalization → label remapping → a LIBLINEAR problem,
    with the per-level statistics of Table 4 along the way. *)

module Record = Tessera_collect.Record
module Plan = Tessera_opt.Plan

type level_stats = {
  level : Plan.level;
  (* merged data *)
  data_instances : int;
  unique_classes : int;
  unique_feature_vectors : int;
  (* ranked data *)
  training_instances : int;
  training_classes : int;
  training_feature_vectors : int;
}

type t = {
  level : Plan.level;
  scaling : Normalize.scaling;
  labels : Labels.t;
  instances : Liblinear_format.instance list;
  stats : level_stats;
}

val build :
  ?max_per_vector:int ->
  ?tolerance:float ->
  level:Plan.level ->
  Record.t list ->
  t
(** [records] is the merged data (possibly from several archives). *)

val problem : t -> Tessera_svm.Problem.t

val predictor :
  scaling:Normalize.scaling ->
  labels:Labels.t ->
  model:Tessera_svm.Model.t ->
  Tessera_features.Features.t ->
  Tessera_modifiers.Modifier.t
(** Compiler-side prediction path: renormalize a raw feature vector with
    the training scaling, query the model, map the predicted label back
    through the lookup table (unknown labels fall back to the null
    modifier). *)
