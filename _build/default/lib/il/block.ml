type terminator =
  | Goto of int
  | If of { cond : Node.t; if_true : int; if_false : int }
  | Return of Node.t option
  | Throw of Node.t

type t = {
  id : int;
  stmts : Node.t list;
  term : terminator;
  handler : int option;
  freq : float;
}

let make ?(handler = None) ?(freq = 1.0) id stmts term =
  { id; stmts; term; handler; freq }

let with_stmts b stmts = { b with stmts }
let with_term b term = { b with term }
let with_freq b freq = { b with freq }

let successors b =
  match b.term with
  | Goto t -> [ t ]
  | If { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Return _ | Throw _ -> []

let terminator_nodes = function
  | Goto _ -> []
  | If { cond; _ } -> [ cond ]
  | Return (Some n) -> [ n ]
  | Return None -> []
  | Throw n -> [ n ]

let map_terminator_nodes f = function
  | Goto t -> Goto t
  | If { cond; if_true; if_false } -> If { cond = f cond; if_true; if_false }
  | Return (Some n) -> Return (Some (f n))
  | Return None -> Return None
  | Throw n -> Throw (f n)

let tree_count b =
  let stmt_nodes = List.fold_left (fun acc n -> acc + Node.size n) 0 b.stmts in
  List.fold_left (fun acc n -> acc + Node.size n) stmt_nodes
    (terminator_nodes b.term)

let pp_term fmt = function
  | Goto t -> Format.fprintf fmt "goto L%d" t
  | If { cond; if_true; if_false } ->
      Format.fprintf fmt "if %a then L%d else L%d" Node.pp cond if_true
        if_false
  | Return None -> Format.fprintf fmt "return"
  | Return (Some n) -> Format.fprintf fmt "return %a" Node.pp n
  | Throw n -> Format.fprintf fmt "throw %a" Node.pp n

let pp fmt b =
  Format.fprintf fmt "@[<v 2>L%d%s:" b.id
    (match b.handler with
    | None -> ""
    | Some h -> Printf.sprintf " [handler L%d]" h);
  List.iter (fun s -> Format.fprintf fmt "@,%a" Node.pp s) b.stmts;
  Format.fprintf fmt "@,%a@]" pp_term b.term
