(** Basic blocks and control flow.

    A block is a sequence of statement trees followed by one terminator.
    Exception flow is modelled with an optional per-block handler: if a
    statement in the block traps (integer division by zero, failed bounds
    check, null dereference, failed checkcast, explicit throw) control
    transfers to the handler block; with no handler the exception
    propagates to the caller. *)

type terminator =
  | Goto of int
  | If of { cond : Node.t; if_true : int; if_false : int }
      (** [cond] evaluates to an integer; nonzero takes [if_true]. *)
  | Return of Node.t option
  | Throw of Node.t

type t = {
  id : int;
  stmts : Node.t list;  (** treetops, evaluated in order for effect *)
  term : terminator;
  handler : int option;  (** exception-handler block covering this block *)
  freq : float;  (** static/profiled execution frequency estimate *)
}

val make : ?handler:int option -> ?freq:float -> int -> Node.t list -> terminator -> t

val with_stmts : t -> Node.t list -> t
val with_term : t -> terminator -> t
val with_freq : t -> float -> t

val successors : t -> int list
(** Normal (non-exceptional) successor block ids, without duplicates. *)

val terminator_nodes : terminator -> Node.t list
(** Trees embedded in the terminator ([If] condition, return value, ...). *)

val map_terminator_nodes : (Node.t -> Node.t) -> terminator -> terminator

val tree_count : t -> int
(** Total number of IL nodes in the block (statements + terminator). *)

val pp : Format.formatter -> t -> unit
