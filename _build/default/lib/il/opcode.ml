type cmp = Eq | Ne | Lt | Le | Gt | Ge

type shift_dir = Shl | Shr | Ushr

type sync_kind = Monitor_enter | Monitor_exit

type array_kind = Bounds_check | Array_copy | Array_cmp | Array_length

type cast_kind =
  | C_byte
  | C_char
  | C_short
  | C_int
  | C_long
  | C_float
  | C_double
  | C_longdouble
  | C_address
  | C_object
  | C_packed
  | C_zoned
  | C_check

type t =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Shift of shift_dir
  | Or
  | And
  | Xor
  | Inc
  | Compare of cmp
  | Cast of cast_kind
  | Load
  | Loadconst
  | Store
  | New
  | Newarray
  | Newmultiarray
  | Instanceof
  | Synchronization of sync_kind
  | Throw_op
  | Branch_op
  | Call
  | Arrayop of array_kind
  | Mixedop

let group_count = 38

let cast_index = function
  | C_byte -> 0
  | C_char -> 1
  | C_short -> 2
  | C_int -> 3
  | C_long -> 4
  | C_float -> 5
  | C_double -> 6
  | C_longdouble -> 7
  | C_address -> 8
  | C_object -> 9
  | C_packed -> 10
  | C_zoned -> 11
  | C_check -> 12

(* Group layout: ALU 0-11, Cast 12-24, Load/Store 25-27, Memory 28-30,
   JVM 31-33, Branch 34-35, Array ops 36, Mixed 37. *)
let group = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | Neg -> 5
  | Shift _ -> 6
  | Or -> 7
  | And -> 8
  | Xor -> 9
  | Inc -> 10
  | Compare _ -> 11
  | Cast k -> 12 + cast_index k
  | Load -> 25
  | Loadconst -> 26
  | Store -> 27
  | New -> 28
  | Newarray -> 29
  | Newmultiarray -> 30
  | Instanceof -> 31
  | Synchronization _ -> 32
  | Throw_op -> 33
  | Branch_op -> 34
  | Call -> 35
  | Arrayop _ -> 36
  | Mixedop -> 37

let group_names =
  [|
    "add"; "sub"; "mul"; "div"; "rem"; "neg"; "shift"; "or"; "and"; "xor";
    "inc"; "compare"; "cast_byte"; "cast_char"; "cast_short"; "cast_int";
    "cast_long"; "cast_float"; "cast_double"; "cast_longdouble";
    "cast_address"; "cast_object"; "cast_packed"; "cast_zoned"; "cast_check";
    "load"; "loadconst"; "store"; "new"; "newarray"; "newmultiarray";
    "instanceof"; "synchronization"; "throw"; "branch"; "call"; "arrayops";
    "mixedops";
  |]

let group_name i =
  if i < 0 || i >= group_count then invalid_arg "Opcode.group_name";
  group_names.(i)

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let shift_name = function Shl -> "shl" | Shr -> "shr" | Ushr -> "ushr"

let sync_name = function
  | Monitor_enter -> "monitorenter"
  | Monitor_exit -> "monitorexit"

let array_name = function
  | Bounds_check -> "boundscheck"
  | Array_copy -> "arraycopy"
  | Array_cmp -> "arraycmp"
  | Array_length -> "arraylength"

let cast_name = function
  | C_byte -> "cast.byte"
  | C_char -> "cast.char"
  | C_short -> "cast.short"
  | C_int -> "cast.int"
  | C_long -> "cast.long"
  | C_float -> "cast.float"
  | C_double -> "cast.double"
  | C_longdouble -> "cast.longdouble"
  | C_address -> "cast.address"
  | C_object -> "cast.object"
  | C_packed -> "cast.packed"
  | C_zoned -> "cast.zoned"
  | C_check -> "cast.check"

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Neg -> "neg"
  | Shift d -> shift_name d
  | Or -> "or"
  | And -> "and"
  | Xor -> "xor"
  | Inc -> "inc"
  | Compare c -> "cmp." ^ cmp_name c
  | Cast k -> cast_name k
  | Load -> "load"
  | Loadconst -> "loadconst"
  | Store -> "store"
  | New -> "new"
  | Newarray -> "newarray"
  | Newmultiarray -> "newmultiarray"
  | Instanceof -> "instanceof"
  | Synchronization s -> sync_name s
  | Throw_op -> "throw"
  | Branch_op -> "branchop"
  | Call -> "call"
  | Arrayop k -> array_name k
  | Mixedop -> "mixedop"

let all_simple =
  [
    Add; Sub; Mul; Div; Rem; Neg; Shift Shl; Shift Shr; Shift Ushr; Or; And;
    Xor; Inc; Compare Eq; Compare Ne; Compare Lt; Compare Le; Compare Gt;
    Compare Ge; Cast C_byte; Cast C_char; Cast C_short; Cast C_int;
    Cast C_long; Cast C_float; Cast C_double; Cast C_longdouble;
    Cast C_address; Cast C_object; Cast C_packed; Cast C_zoned; Cast C_check;
    Load; Loadconst; Store; New; Newarray; Newmultiarray; Instanceof;
    Synchronization Monitor_enter; Synchronization Monitor_exit; Throw_op;
    Branch_op; Call; Arrayop Bounds_check; Arrayop Array_copy;
    Arrayop Array_cmp; Arrayop Array_length; Mixedop;
  ]

let of_name s = List.find_opt (fun op -> String.equal (name op) s) all_simple

let equal (a : t) (b : t) = a = b

let pp fmt t = Format.pp_print_string fmt (name t)

let cast_target = function
  | C_byte -> Some Types.Byte
  | C_char -> Some Types.Char
  | C_short -> Some Types.Short
  | C_int -> Some Types.Int
  | C_long -> Some Types.Long
  | C_float -> Some Types.Float_
  | C_double -> Some Types.Double
  | C_longdouble -> Some Types.Long_double
  | C_address -> Some Types.Address
  | C_object -> Some Types.Object_
  | C_packed -> Some Types.Packed_decimal
  | C_zoned -> Some Types.Zoned_decimal
  | C_check -> None
