(** IR well-formedness checking.

    The optimizer's central safety contract is: every transformation maps
    a valid method to a valid method with the same observable semantics.
    This module checks the static half of that contract; semantic
    preservation is checked dynamically by differential tests. *)

type error = { where : string; what : string }

val pp_error : Format.formatter -> error -> unit

val check_method : ?classes:Classdef.t array -> ?method_count:int -> Meth.t -> error list
(** Static checks: block ids consistent and targets in range; entry block
    exists; handler ids valid and not self-referential; symbol references
    in range; node arities legal for their opcodes; [Loadconst] has no
    children; [Store] arity 1/2/3; call/class ids in range when the
    context is supplied; terminator conditions are value-producing. *)

val check_program : Program.t -> error list

val assert_valid_method : ?classes:Classdef.t array -> ?method_count:int -> Meth.t -> unit
(** Raises [Invalid_argument] with a rendered error list if invalid. *)

val assert_valid : Program.t -> unit
