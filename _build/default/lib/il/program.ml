type t = {
  name : string;
  methods : Meth.t array;
  classes : Classdef.t array;
  entry : int;
}

let make ~name ?(classes = [||]) ~entry methods =
  if entry < 0 || entry >= Array.length methods then
    invalid_arg "Program.make: entry method id out of range";
  { name; methods; classes; entry }

let meth p id =
  if id < 0 || id >= Array.length p.methods then
    invalid_arg (Printf.sprintf "Program.meth: no method %d" id);
  p.methods.(id)

let find_method p name =
  let found = ref None in
  Array.iteri
    (fun i (m : Meth.t) ->
      if !found = None && String.equal m.name name then found := Some i)
    p.methods;
  !found

let method_count p = Array.length p.methods

let with_method p id m =
  let methods = Array.copy p.methods in
  methods.(id) <- m;
  { p with methods }

let callees m =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  Meth.fold_nodes
    (fun () (n : Node.t) ->
      if n.op = Opcode.Call && n.sym >= 0 && not (Hashtbl.mem seen n.sym) then begin
        Hashtbl.add seen n.sym ();
        order := n.sym :: !order
      end)
    () m;
  List.rev !order

let total_tree_count p =
  Array.fold_left (fun acc m -> acc + Meth.tree_count m) 0 p.methods

let equal a b =
  String.equal a.name b.name && a.entry = b.entry
  && Array.length a.methods = Array.length b.methods
  && Array.for_all2 Meth.equal a.methods b.methods
  && a.classes = b.classes

let pp fmt p =
  Format.fprintf fmt "@[<v>program %S (entry %d)@," p.name p.entry;
  Array.iteri (fun i m -> Format.fprintf fmt "[%d] %a@," i Meth.pp m) p.methods;
  Format.fprintf fmt "@]"
