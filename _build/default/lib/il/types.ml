type t =
  | Byte
  | Char
  | Short
  | Int
  | Long
  | Float_
  | Double
  | Void
  | Address
  | Object_
  | Long_double
  | Packed_decimal
  | Zoned_decimal
  | Mixed

let all =
  [|
    Byte; Char; Short; Int; Long; Float_; Double; Void; Address; Object_;
    Long_double; Packed_decimal; Zoned_decimal; Mixed;
  |]

let count = Array.length all

let index = function
  | Byte -> 0
  | Char -> 1
  | Short -> 2
  | Int -> 3
  | Long -> 4
  | Float_ -> 5
  | Double -> 6
  | Void -> 7
  | Address -> 8
  | Object_ -> 9
  | Long_double -> 10
  | Packed_decimal -> 11
  | Zoned_decimal -> 12
  | Mixed -> 13

let of_index i =
  if i < 0 || i >= count then invalid_arg "Types.of_index";
  all.(i)

let name = function
  | Byte -> "byte"
  | Char -> "char"
  | Short -> "short"
  | Int -> "int"
  | Long -> "long"
  | Float_ -> "float"
  | Double -> "double"
  | Void -> "void"
  | Address -> "address"
  | Object_ -> "object"
  | Long_double -> "longdouble"
  | Packed_decimal -> "packed"
  | Zoned_decimal -> "zoned"
  | Mixed -> "mixed"

let of_name s = Array.find_opt (fun t -> String.equal (name t) s) all

let equal (a : t) (b : t) = a = b

let pp fmt t = Format.pp_print_string fmt (name t)

let is_integral = function
  | Byte | Char | Short | Int | Long | Packed_decimal | Zoned_decimal -> true
  | _ -> false

let is_floating = function Float_ | Double | Long_double -> true | _ -> false

let is_reference = function Address | Object_ -> true | _ -> false

let bit_width = function
  | Byte -> 8
  | Char | Short -> 16
  | Int -> 32
  | Long -> 64
  | Float_ -> 32
  | Double -> 64
  | Void -> 0
  | Address | Object_ -> 64
  | Long_double -> 64 (* modelled on 64-bit significand *)
  | Packed_decimal | Zoned_decimal -> 64
  | Mixed -> 0
