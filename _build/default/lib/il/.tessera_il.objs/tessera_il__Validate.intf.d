lib/il/validate.mli: Classdef Format Meth Program
