lib/il/node.mli: Format Opcode Types
