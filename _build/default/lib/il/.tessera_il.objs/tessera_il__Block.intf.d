lib/il/block.mli: Format Node
