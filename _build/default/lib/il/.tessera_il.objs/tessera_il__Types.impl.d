lib/il/types.ml: Array Format String
