lib/il/program.ml: Array Classdef Format Hashtbl List Meth Node Opcode Printf String
