lib/il/types.mli: Format
