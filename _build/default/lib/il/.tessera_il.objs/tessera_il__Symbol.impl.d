lib/il/symbol.ml: Format String Types
