lib/il/symbol.mli: Format Types
