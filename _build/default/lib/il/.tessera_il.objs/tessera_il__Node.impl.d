lib/il/node.ml: Array Format Hashtbl Int64 Opcode Types
