lib/il/opcode.ml: Array Format List String Types
