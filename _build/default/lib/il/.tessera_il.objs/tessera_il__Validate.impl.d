lib/il/validate.ml: Array Block Format List Meth Node Opcode Printf Program String Types
