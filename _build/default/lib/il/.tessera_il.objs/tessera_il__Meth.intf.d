lib/il/meth.mli: Block Format Node Symbol Types
