lib/il/meth.ml: Array Block Format Hashtbl List Node Printf String Symbol Types
