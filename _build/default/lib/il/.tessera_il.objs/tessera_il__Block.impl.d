lib/il/block.ml: Format List Node Printf
