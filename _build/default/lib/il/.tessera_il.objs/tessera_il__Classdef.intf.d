lib/il/classdef.mli: Types
