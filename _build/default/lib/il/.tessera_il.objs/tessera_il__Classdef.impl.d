lib/il/classdef.ml: Array Types
