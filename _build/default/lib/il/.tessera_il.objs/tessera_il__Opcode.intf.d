lib/il/opcode.mli: Format Types
