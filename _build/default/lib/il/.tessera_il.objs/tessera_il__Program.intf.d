lib/il/program.mli: Classdef Format Meth
