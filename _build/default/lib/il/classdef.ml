type t = { name : string; fields : Types.t array; parent : int }

let make ?(parent = -1) name fields = { name; fields; parent }

let is_subclass classes sub super =
  let rec walk c =
    if c < 0 || c >= Array.length classes then false
    else if c = super then true
    else walk classes.(c).parent
  in
  walk sub
