(** Class descriptors, the minimum the VM needs to allocate objects and
    answer [instanceof]/checkcast questions: a name, field types, and a
    single-inheritance parent chain. *)

type t = {
  name : string;
  fields : Types.t array;
  parent : int;  (** class id of the superclass; -1 for roots *)
}

val make : ?parent:int -> string -> Types.t array -> t

val is_subclass : t array -> int -> int -> bool
(** [is_subclass classes sub super] walks the parent chain. *)
