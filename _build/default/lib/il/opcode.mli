(** Operations of the tree IL.

    The catalogue mirrors Table 3 of the paper: 38 operation groups over
    six families (ALU, cast, load/store, memory, JVM, branch) plus the
    array-operations and mixed-operations buckets.  Several opcodes carry a
    refinement (comparison relation, shift direction, ...) that does not
    change the feature group they count in. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type shift_dir = Shl | Shr | Ushr

type sync_kind = Monitor_enter | Monitor_exit

type array_kind =
  | Bounds_check  (** children: array, index; traps on violation *)
  | Array_copy  (** children: src, dst, length *)
  | Array_cmp  (** children: a, b; yields int *)
  | Array_length  (** child: array *)

type cast_kind =
  | C_byte
  | C_char
  | C_short
  | C_int
  | C_long
  | C_float
  | C_double
  | C_longdouble
  | C_address
  | C_object
  | C_packed
  | C_zoned
  | C_check  (** checkcast: traps if the reference is not of the class *)

type t =
  (* ALU *)
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Neg
  | Shift of shift_dir
  | Or
  | And
  | Xor
  | Inc  (** increment a symbol in place by a constant *)
  | Compare of cmp
  (* Cast *)
  | Cast of cast_kind
  (* Load/Store *)
  | Load  (** arity 0: symbol; arity 1: field of object; arity 2: array element *)
  | Loadconst
  | Store  (** arity 1: symbol; arity 2: object field; arity 3: array element *)
  (* Memory *)
  | New
  | Newarray
  | Newmultiarray
  (* JVM *)
  | Instanceof
  | Synchronization of sync_kind
  | Throw_op  (** materialises an exception object; thrown by terminator *)
  (* Branch *)
  | Branch_op  (** explicit branch computation lowered into terminators *)
  | Call
  (* Buckets *)
  | Arrayop of array_kind
  | Mixedop  (** intrinsic / unclassifiable operation *)

val group_count : int
(** Number of distinct feature groups: 38. *)

val group : t -> int
(** Feature-group index in [\[0, group_count)], matching Table 3's rows:
    refinements collapse ([Shift Shl] and [Shift Shr] both count as
    "shift"; each cast target is its own group). *)

val group_name : int -> string

val name : t -> string
(** Unique printable mnemonic, parseable by the [lang] front end. *)

val of_name : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val cmp_name : cmp -> string
val cast_target : cast_kind -> Types.t option
(** Result type implied by a cast; [None] for [C_check] (keeps its input
    type). *)
