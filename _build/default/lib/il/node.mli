(** Expression trees.

    A node is an immutable expression tree in the Testarossa style: an
    opcode, a result type, child subtrees, and — depending on the opcode —
    a symbol reference, a constant, or optimization flags.  Statements and
    control flow live in {!Block}; trees only compute values and local
    effects.

    Optimization flags are how transformations communicate proofs to the
    back end without changing tree shape: e.g. escape analysis marks a
    [New] with {!flag_stack_alloc} and the code generator then emits a
    cheap stack allocation.  This mirrors the node-flag mechanism of the
    real compiler. *)

type flags = int

val flag_none : flags

val flag_stack_alloc : flags
(** allocation proven non-escaping *)

val flag_no_bounds_check : flags
(** bounds check proven redundant *)

val flag_no_null_check : flags
(** null check proven redundant *)

val flag_sync_elided : flags
(** monitor operation proven thread-local *)

val flag_no_overflow : flags
(** arithmetic proven non-overflowing *)

val flag_rematerialized : flags
(** value recomputed rather than kept live *)

type t = private {
  uid : int;  (** unique within a method; fresh nodes get fresh uids *)
  op : Opcode.t;
  ty : Types.t;
  args : t array;
  sym : int;  (** symbol / field / callee / class id; -1 when unused *)
  const : int64;  (** payload of [Loadconst] (float bits for FP types) *)
  flags : flags;
}

val mk :
  ?sym:int -> ?const:int64 -> ?flags:flags -> Opcode.t -> Types.t -> t array -> t
(** Fresh node with a globally fresh uid.  Uids only need to be unique
    within one method; a global counter trivially guarantees that. *)

val with_args : t -> t array -> t
(** Copy with new children and a fresh uid. *)

val with_flags : t -> flags -> t
(** Copy with flags OR-ed in, {e keeping} the uid (the node is "the same
    value", just annotated). *)

val with_type : t -> Types.t -> t

val has_flag : t -> flags -> bool

(** {1 Convenience constructors} *)

val iconst : Types.t -> int64 -> t
val fconst : Types.t -> float -> t
val load_sym : Types.t -> int -> t
val store_sym : int -> t -> t
val binop : Opcode.t -> Types.t -> t -> t -> t
val call : Types.t -> callee:int -> t array -> t

val const_float : t -> float
(** Decode the constant payload of an FP [Loadconst]. *)

(** {1 Structure} *)

val size : t -> int
(** Number of nodes in the tree. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over every node of the tree. *)

val exists : (t -> bool) -> t -> bool

val map_bottom_up : (t -> t) -> t -> t
(** Rebuilds the tree bottom-up, applying [f] to every node after its
    children were rewritten.  Nodes whose children are physically
    unchanged and for which [f] is the identity are preserved
    (uids stable), so repeated passes do not churn uids. *)

val structural_equal : t -> t -> bool
(** Equality ignoring uids and flags — the notion used by common
    subexpression elimination. *)

val structural_hash : t -> int

val is_pure : t -> bool
(** [true] when re-evaluating this single node (not the subtree) cannot
    trap, allocate, or touch method-call/monitor state.  Loads are pure
    here; whether they can be {e reordered} is a separate dataflow
    question answered by the optimizer. *)

val subtree_pure : t -> bool
(** Whole tree satisfies {!is_pure}. *)

val pp : Format.formatter -> t -> unit
(** One-line s-expression rendering, for debugging. *)
