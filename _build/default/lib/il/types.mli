(** The fourteen data types tracked by the feature extractor (Table 2 of
    the paper): the eight Java native types, the two non-scalar types
    (addresses and objects), Testarossa's specialised decimal/extended
    types, and the learning-only [Mixed] bucket. *)

type t =
  | Byte
  | Char
  | Short
  | Int
  | Long
  | Float_
  | Double
  | Void
  | Address  (** arrays of one or more dimensions *)
  | Object_  (** user-defined objects *)
  | Long_double  (** IEEE-754 binary128 *)
  | Packed_decimal  (** BCD fixed point *)
  | Zoned_decimal  (** BCD zoned *)
  | Mixed  (** learning-only: mixed/unclassifiable *)

val all : t array
(** All fourteen types, in feature-index order. *)

val count : int
(** [= Array.length all = 14]. *)

val index : t -> int
(** Position of a type in {!all}; the feature-vector slot it counts in. *)

val of_index : int -> t

val name : t -> string
val of_name : string -> t option

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val is_integral : t -> bool
(** Byte/Char/Short/Int/Long and the BCD decimals (which Tessera models as
    fixed-point integers). *)

val is_floating : t -> bool
(** Float/Double/Long_double. *)

val is_reference : t -> bool
(** Address/Object. *)

val bit_width : t -> int
(** Storage width used when truncating on store/cast; 64 for references
    (a handle), 0 for [Void] and [Mixed]. *)
