(** Whole-program container: the unit loaded into the VM.

    Method ids are indices into [methods]; [Call] nodes refer to callees
    by method id, [New]/[Instanceof]/checkcast nodes refer to classes by
    class id. *)

type t = {
  name : string;
  methods : Meth.t array;
  classes : Classdef.t array;
  entry : int;  (** method id executed per benchmark iteration *)
}

val make : name:string -> ?classes:Classdef.t array -> entry:int -> Meth.t array -> t

val meth : t -> int -> Meth.t
val find_method : t -> string -> int option
(** Lookup by full signature name. *)

val method_count : t -> int

val with_method : t -> int -> Meth.t -> t
(** Functional update of one method (used by whole-program transformations
    such as inlining). *)

val callees : Meth.t -> int list
(** Distinct method ids called (statically) by a method. *)

val total_tree_count : t -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
