type error = { where : string; what : string }

let pp_error fmt e = Format.fprintf fmt "%s: %s" e.where e.what

let arity_ok (n : Node.t) =
  let a = Array.length n.args in
  match n.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem | Opcode.Or
  | Opcode.And | Opcode.Xor | Opcode.Shift _ | Opcode.Compare _ ->
      a = 2
  | Opcode.Neg -> a = 1
  | Opcode.Inc -> a = 0 (* symbol += const payload *)
  | Opcode.Cast _ -> a = 1
  | Opcode.Load -> a = 0 || a = 1 || a = 2
  | Opcode.Loadconst -> a = 0
  | Opcode.Store -> a = 1 || a = 2 || a = 3
  | Opcode.New -> a = 0
  | Opcode.Newarray -> a = 1
  | Opcode.Newmultiarray -> a = 2
  | Opcode.Instanceof -> a = 1
  | Opcode.Synchronization _ -> a <= 1
  | Opcode.Throw_op -> a <= 1
  | Opcode.Branch_op -> a = 1
  | Opcode.Call -> true
  | Opcode.Arrayop Opcode.Bounds_check -> a = 2
  | Opcode.Arrayop Opcode.Array_copy -> a = 3
  | Opcode.Arrayop Opcode.Array_cmp -> a = 2
  | Opcode.Arrayop Opcode.Array_length -> a = 1
  | Opcode.Mixedop -> true

let needs_sym (n : Node.t) =
  match n.op with
  | Opcode.Load when Array.length n.args = 0 -> true
  | Opcode.Store when Array.length n.args = 1 -> true
  | Opcode.Inc -> true
  | Opcode.Call -> true
  | Opcode.New | Opcode.Instanceof | Opcode.Cast Opcode.C_check -> true
  | _ -> false

let check_method ?(classes = [||]) ?(method_count = max_int) (m : Meth.t) =
  let errs = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errs := { where; what } :: !errs) fmt
  in
  let nblocks = Array.length m.blocks in
  let nsyms = Array.length m.symbols in
  if nblocks = 0 then err m.name "method has no blocks";
  Array.iteri
    (fun i (b : Block.t) ->
      let where = Printf.sprintf "%s:L%d" m.name b.id in
      if b.id <> i then err where "block id %d at index %d" b.id i;
      (match b.handler with
      | Some h when h < 0 || h >= nblocks -> err where "handler L%d out of range" h
      | Some h when h = b.id -> err where "block is its own handler"
      | _ -> ());
      List.iter
        (fun t ->
          if t < 0 || t >= nblocks then err where "branch target L%d out of range" t)
        (Block.successors b);
      let check_tree root =
        Node.fold
          (fun () (n : Node.t) ->
            if not (arity_ok n) then
              err where "opcode %s with arity %d" (Opcode.name n.op)
                (Array.length n.args);
            if needs_sym n && n.sym < 0 then
              err where "opcode %s needs a symbol" (Opcode.name n.op);
            (match n.op with
            | Opcode.Load when Array.length n.args = 0 ->
                if n.sym >= nsyms then err where "load of symbol $%d out of range" n.sym
            | Opcode.Store when Array.length n.args = 1 ->
                if n.sym >= nsyms then err where "store to symbol $%d out of range" n.sym
            | Opcode.Inc ->
                if n.sym >= nsyms then err where "inc of symbol $%d out of range" n.sym
            | Opcode.Call ->
                if n.sym >= method_count then
                  err where "call to method %d out of range" n.sym
            | Opcode.New ->
                if Array.length classes > 0 && n.sym >= Array.length classes then
                  err where "new of class %d out of range" n.sym
            | Opcode.Loadconst ->
                if n.ty = Types.Void then err where "loadconst of void"
            | _ -> ()))
          () root
      in
      List.iter check_tree b.stmts;
      List.iter check_tree (Block.terminator_nodes b.term);
      match b.term with
      | Block.If { cond; _ } ->
          if cond.Node.ty = Types.Void then err where "if condition produces void"
      | Block.Return (Some v) ->
          if m.ret = Types.Void then err where "value return from void method"
          else if v.Node.ty = Types.Void then err where "return of void value"
      | Block.Return None ->
          if m.ret <> Types.Void then err where "missing return value"
      | _ -> ())
    m.blocks;
  let nargs = Meth.arg_count m in
  if nargs <> Array.length m.params then
    err m.name "param count %d but %d arg symbols" (Array.length m.params) nargs;
  List.rev !errs

let check_program (p : Program.t) =
  Array.to_list p.methods
  |> List.concat_map (fun m ->
         check_method ~classes:p.classes
           ~method_count:(Array.length p.methods)
           m)

let render errs =
  String.concat "; "
    (List.map (fun e -> Format.asprintf "%a" pp_error e) errs)

let assert_valid_method ?classes ?method_count m =
  match check_method ?classes ?method_count m with
  | [] -> ()
  | errs -> invalid_arg ("invalid method: " ^ render errs)

let assert_valid p =
  match check_program p with
  | [] -> ()
  | errs -> invalid_arg ("invalid program: " ^ render errs)
