type kind = Arg | Temp

type t = { name : string; ty : Types.t; kind : kind }

let arg name ty = { name; ty; kind = Arg }
let temp name ty = { name; ty; kind = Temp }

let equal a b =
  String.equal a.name b.name && Types.equal a.ty b.ty && a.kind = b.kind

let pp fmt s =
  Format.fprintf fmt "%s:%a%s" s.name Types.pp s.ty
    (match s.kind with Arg -> " (arg)" | Temp -> "")
