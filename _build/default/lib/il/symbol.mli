(** Method-local symbols.  The paper's feature vector partitions "the set
    of all symbols referenced in the method" into arguments and
    temporaries (Table 1); the symbol table preserves that split. *)

type kind = Arg | Temp

type t = { name : string; ty : Types.t; kind : kind }

val arg : string -> Types.t -> t
val temp : string -> Types.t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
