module Opcode = Tessera_il.Opcode
module Types = Tessera_il.Types
module Node = Tessera_il.Node

type t = {
  name : string;
  mem_factor : float;
  branch_factor : float;
  fp_factor : float;
  decimal_factor : float;
  call_overhead : int;
  local_access : codegen_quality:Cost.codegen_quality -> int;
}

let zircon =
  {
    name = "zircon";
    mem_factor = 1.0;
    branch_factor = 1.0;
    fp_factor = 1.0;
    decimal_factor = 1.0;
    call_overhead = Cost.call_overhead;
    local_access = (fun ~codegen_quality -> Cost.local_access codegen_quality);
  }

let obsidian =
  {
    name = "obsidian";
    mem_factor = 1.8;
    branch_factor = 0.6;
    fp_factor = 0.8;
    decimal_factor = 3.0;
    call_overhead = 28;
    local_access =
      (fun ~codegen_quality ->
        (* bigger register file: register-allocated locals are free-ish,
           but spills to memory cost the full memory factor *)
        match codegen_quality with
        | Cost.Q_base -> 3
        | Cost.Q_regalloc | Cost.Q_full -> 1);
  }

let all = [ zircon; obsidian ]

let find name = List.find_opt (fun t -> String.equal t.name name) all

let category_factor t (op : Opcode.t) ty =
  let decimal =
    match ty with
    | Types.Packed_decimal | Types.Zoned_decimal | Types.Long_double ->
        t.decimal_factor
    | _ -> 1.0
  in
  let shape =
    match op with
    | Opcode.Load | Opcode.Store | Opcode.New | Opcode.Newarray
    | Opcode.Newmultiarray | Opcode.Arrayop _ ->
        t.mem_factor
    | Opcode.Branch_op | Opcode.Call | Opcode.Throw_op -> t.branch_factor
    | _ -> if Types.is_floating ty then t.fp_factor else 1.0
  in
  shape *. decimal

let op_cost t op ty =
  int_of_float (ceil (float_of_int (Cost.op_base op ty) *. category_factor t op ty))

let flag_discount t (n : Node.t) =
  let scaled =
    int_of_float
      (ceil
         (float_of_int (Cost.flag_discount n)
         *. category_factor t n.Node.op n.Node.ty))
  in
  min scaled (op_cost t n.Node.op n.Node.ty)
