(** The tree-IL interpreter — the VM's slow path.

    Every node evaluation pays the native operation cost plus a dispatch
    overhead, charged through the [charge] callback so the caller decides
    which clock the cycles land on.  Method calls are delegated to the
    [invoke] callback: the execution engine (in [tessera.jit]) uses it to
    dispatch each callee to whichever implementation — interpreted or
    compiled — is current at that moment. *)

type context = {
  classes : Tessera_il.Classdef.t array;
  charge : int -> unit;  (** cycle accounting *)
  invoke : int -> Values.t array -> Values.t;  (** method-call dispatch *)
  fuel : int ref;
      (** shared node-evaluation budget; guards against non-terminating
          generated programs.  Raises {!Out_of_fuel} at zero. *)
}

exception Out_of_fuel

val run : context -> Tessera_il.Meth.t -> Values.t array -> Values.t
(** Execute one invocation.  Raises [Values.Trap] if an exception escapes
    the method (after charging the unwind cost). *)
