lib/vm/interp.mli: Tessera_il Values
