lib/vm/interp.ml: Array Cost Int64 List Semantics Tessera_il Values
