lib/vm/cost.ml: Tessera_il
