lib/vm/clock.ml: Cost Int64 Tessera_util
