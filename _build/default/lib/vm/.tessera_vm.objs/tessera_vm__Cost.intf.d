lib/vm/cost.mli: Tessera_il
