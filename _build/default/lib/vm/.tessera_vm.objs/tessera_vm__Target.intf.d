lib/vm/target.mli: Cost Tessera_il
