lib/vm/values.ml: Array Format Int64 Tessera_il
