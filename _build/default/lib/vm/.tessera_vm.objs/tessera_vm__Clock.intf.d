lib/vm/clock.mli:
