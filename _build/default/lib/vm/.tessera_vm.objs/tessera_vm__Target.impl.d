lib/vm/target.ml: Cost List String Tessera_il
