lib/vm/semantics.ml: Array Float Int64 Tessera_il Values
