lib/vm/semantics.mli: Tessera_il Values
