lib/vm/values.mli: Format Tessera_il
