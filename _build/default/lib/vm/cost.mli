(** The cycle cost model of the simulated CPU.

    Both execution engines charge from this single table so that the
    interpreted/compiled performance gap, and the effect of every
    optimization, come from one tunable place.  Costs are in cycles of the
    simulated 2 GHz core (so 2_000_000 cycles = 1 ms, matching the
    hardware in Section 8.1 of the paper). *)

val cycles_per_ms : int
(** 2_000_000 (2 GHz). *)

val interp_dispatch : int
(** Extra cycles the interpreter pays per IL node on top of the native
    cost: bytecode fetch/decode/dispatch. *)

type codegen_quality = Q_base | Q_regalloc | Q_full
(** Back-end quality tier: [Q_base] keeps locals in memory, [Q_regalloc]
    promotes hot locals to registers, [Q_full] adds scheduling.  Higher
    optimization levels, and the global-register-hint transformation,
    raise the tier. *)

val local_access : codegen_quality -> int
(** Cycles for a compiled local-variable load/store at a quality tier. *)

val quality_rank : codegen_quality -> int
(** Total order on tiers: base < regalloc < full. *)

val op_base : Tessera_il.Opcode.t -> Tessera_il.Types.t -> int
(** Native cycles of one operation, before flag discounts.  Software
    emulated types (long double, packed/zoned decimal) are a multiple of
    their hardware equivalents.  Dynamic components (array-copy length)
    are charged separately by the engines. *)

val flag_discount : Tessera_il.Node.t -> int
(** Cycles saved on this node by optimization flags (elided checks,
    stack allocation, elided monitors); never exceeds {!op_base}. *)

val call_overhead : int
(** Linkage cost charged per invocation, on top of callee body cycles. *)

val interp_call_overhead : int
(** Much larger invocation cost through the interpreter (frame setup,
    argument marshalling through boxed slots). *)

val per_element_copy : int
(** Per-element cycles of array copy/compare. *)

val exception_unwind : int
(** Charge for dispatching one trap to a handler. *)
