(** Value-level operational semantics, shared verbatim by the tree
    interpreter and the native-code executor so the two engines cannot
    diverge: the differential property [interp(m) = exec(codegen(m))]
    reduces to both engines sequencing these primitives identically. *)

module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode

val binop : Opcode.t -> Types.t -> Values.t -> Values.t -> Values.t
(** Arithmetic/logic/compare.  Integer [Div]/[Rem] by zero raises
    [Trap Div_by_zero]; results are truncated to the node type. *)

val neg : Types.t -> Values.t -> Values.t

val cast : Opcode.cast_kind -> Types.t -> Values.t -> Values.t
(** Numeric conversions and reference reinterpretation.  [C_check] is the
    identity here; engines must route checkcasts through {!checkcast}. *)

val checkcast :
  classes:Tessera_il.Classdef.t array -> int -> Values.t -> Values.t
(** Raises [Trap Class_cast] when a non-null object is not an instance of
    the class; null and arrays pass. *)

val field_load : Values.t -> int -> Values.t
(** [field_load obj i]; raises [Trap Null_deref] / [Trap Out_of_bounds]. *)

val field_store : Values.t -> int -> Values.t -> unit

val elem_load : Values.t -> Values.t -> Values.t
(** Array element read with implicit null and bounds checks. *)

val elem_store : Values.t -> Values.t -> Values.t -> unit

val bounds_check : Values.t -> Values.t -> unit

val array_copy : Values.t -> Values.t -> Values.t -> int
(** Returns the element count actually copied (for dynamic cycle
    charging). *)

val array_cmp : Values.t -> Values.t -> Values.t * int
(** Lexicographic comparison; also returns elements inspected. *)

val array_length : Values.t -> Values.t

val new_obj : classes:Tessera_il.Classdef.t array -> int -> Values.t

val new_array : elem:Types.t -> Values.t -> Values.t
(** Raises [Trap Out_of_bounds] for negative or absurd (>2^20) lengths. *)

val new_multiarray : elem:Types.t -> Values.t -> Values.t -> Values.t

val instanceof : classes:Tessera_il.Classdef.t array -> int -> Values.t -> Values.t

val monitor : Values.t -> unit
(** Null check of the monitored object (single-threaded simulation). *)

val mixed : Types.t -> Values.t array -> Values.t
(** Deterministic stand-in for unclassified intrinsics: hashes the shallow
    shape of its operands into the result type. *)

val store_coerce : Types.t -> Values.t -> Values.t
(** Truncation performed by stores into a typed location. *)
