(** Back-end targets.

    Testarossa generates code for many platforms (x86, PowerPC, S/390,
    ...), and the paper's motivation (Section 1) is precisely that
    hand-tuned compilation plans "may require adjustments or may need to
    be completely redesigned" per platform.  Tessera models a platform as
    a scaling of the back-end cost model: the value of each transformation
    then genuinely depends on the deployment target (memory-heavy targets
    reward load elimination, software-decimal targets reward BCD folding,
    and so on), which is what the platform-sensitivity study in the bench
    harness exercises.

    Targets scale the cost of {e compiled} code; interpretation cost is
    host-neutral. *)

type t = {
  name : string;
  mem_factor : float;  (** loads/stores/allocation *)
  branch_factor : float;  (** jumps, calls linkage *)
  fp_factor : float;
  decimal_factor : float;  (** extra multiplier for BCD/long-double ops *)
  call_overhead : int;
  local_access : codegen_quality:Cost.codegen_quality -> int;
}

val zircon : t
(** The default CISC-ish target; matches {!Cost}'s baseline numbers. *)

val obsidian : t
(** A RISC-ish target: cheaper branching, costlier memory traffic, no
    decimal hardware at all (BCD fully emulated), slightly better
    floating point. *)

val all : t list
val find : string -> t option

val op_cost : t -> Tessera_il.Opcode.t -> Tessera_il.Types.t -> int
(** [Cost.op_base] scaled into the target. *)

val flag_discount : t -> Tessera_il.Node.t -> int
(** Optimization-flag discount, scaled consistently with {!op_cost} and
    never exceeding it. *)
