module Types = Tessera_il.Types

type obj = { class_id : int; fields : t array }

and arr = { elem : Types.t; data : t array }

and t =
  | Int_v of int64
  | Float_v of float
  | Obj_v of obj
  | Arr_v of arr
  | Null_v
  | Void_v

type trap =
  | Div_by_zero
  | Out_of_bounds
  | Null_deref
  | Class_cast
  | User_exception
  | Stack_overflow

exception Trap of trap

let trap_name = function
  | Div_by_zero -> "ArithmeticException"
  | Out_of_bounds -> "ArrayIndexOutOfBoundsException"
  | Null_deref -> "NullPointerException"
  | Class_cast -> "ClassCastException"
  | User_exception -> "UserException"
  | Stack_overflow -> "StackOverflowError"

let default ty =
  match ty with
  | Types.Void -> Void_v
  | t when Types.is_floating t -> Float_v 0.0
  | t when Types.is_reference t -> Null_v
  | _ -> Int_v 0L

let truncate ty v =
  match ty with
  | Types.Byte -> Int64.of_int (Int64.to_int v land 0xff - if Int64.to_int v land 0x80 <> 0 then 0x100 else 0)
  | Types.Char -> Int64.of_int (Int64.to_int v land 0xffff)
  | Types.Short ->
      Int64.of_int
        ((Int64.to_int v land 0xffff) - if Int64.to_int v land 0x8000 <> 0 then 0x10000 else 0)
  | Types.Int ->
      Int64.of_int32 (Int64.to_int32 v)
  | _ -> v

let as_int = function
  | Int_v v -> v
  | Float_v f -> Int64.of_float f
  | Null_v -> 0L
  | Void_v -> 0L
  | Obj_v _ | Arr_v _ -> raise (Trap Null_deref)

let as_float = function
  | Float_v f -> f
  | Int_v v -> Int64.to_float v
  | Null_v | Void_v -> 0.0
  | Obj_v _ | Arr_v _ -> raise (Trap Null_deref)

let is_truthy = function
  | Int_v v -> v <> 0L
  | Float_v f -> f <> 0.0
  | Obj_v _ | Arr_v _ -> true
  | Null_v | Void_v -> false

let rec equal a b =
  match (a, b) with
  | Int_v x, Int_v y -> Int64.equal x y
  | Float_v x, Float_v y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Null_v, Null_v | Void_v, Void_v -> true
  | Obj_v x, Obj_v y ->
      x.class_id = y.class_id
      && Array.length x.fields = Array.length y.fields
      && Array.for_all2 equal x.fields y.fields
  | Arr_v x, Arr_v y ->
      Types.equal x.elem y.elem
      && Array.length x.data = Array.length y.data
      && Array.for_all2 equal x.data y.data
  | _ -> false

let mix h v = Int64.(add (mul h 0x100000001B3L) v)

let rec checksum = function
  | Int_v v -> mix 1L v
  | Float_v f -> mix 2L (Int64.bits_of_float f)
  | Null_v -> 3L
  | Void_v -> 4L
  | Obj_v o ->
      Array.fold_left (fun acc f -> mix acc (checksum f)) (mix 5L (Int64.of_int o.class_id)) o.fields
  | Arr_v a ->
      Array.fold_left (fun acc f -> mix acc (checksum f)) (mix 6L (Int64.of_int (Types.index a.elem))) a.data

let rec pp fmt = function
  | Int_v v -> Format.fprintf fmt "%Ld" v
  | Float_v f -> Format.fprintf fmt "%h" f
  | Null_v -> Format.fprintf fmt "null"
  | Void_v -> Format.fprintf fmt "void"
  | Obj_v o ->
      Format.fprintf fmt "obj#%d{%a}" o.class_id
        (Format.pp_print_seq ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") pp)
        (Array.to_seq o.fields)
  | Arr_v a ->
      Format.fprintf fmt "arr[%a]"
        (Format.pp_print_seq ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") pp)
        (Array.to_seq a.data)
