(** Runtime values of the simulated JVM.

    Integral types (including the BCD decimal types, which Tessera models
    as 64-bit fixed-point integers) are carried as [int64] and truncated
    to their storage width on stores and casts; floating types are carried
    as [float]. *)

type obj = { class_id : int; fields : t array }

and arr = { elem : Tessera_il.Types.t; data : t array }

and t =
  | Int_v of int64
  | Float_v of float
  | Obj_v of obj
  | Arr_v of arr
  | Null_v
  | Void_v

type trap =
  | Div_by_zero
  | Out_of_bounds
  | Null_deref
  | Class_cast
  | User_exception
  | Stack_overflow  (** simulated call-depth limit *)

exception Trap of trap

val trap_name : trap -> string

val default : Tessera_il.Types.t -> t
(** Zero / null / unit value of a type. *)

val truncate : Tessera_il.Types.t -> int64 -> int64
(** Wrap an integer into the storage width of an integral type (sign
    behaviour matches the JVM: byte/short/int sign-extend, char
    zero-extends). *)

val as_int : t -> int64
(** Coerces; [Null_v] reads as [0L] so comparisons against null work.
    Raises [Trap Null_deref] on object/array values used as numbers. *)

val as_float : t -> float

val is_truthy : t -> bool
(** Branch condition: nonzero / non-null. *)

val equal : t -> t -> bool
(** Structural equality; object identity for [Obj_v]/[Arr_v] is replaced
    by deep structural comparison with cycle-unsafe recursion (the
    workload generator never builds cyclic graphs). *)

val checksum : t -> int64
(** Deterministic digest used by differential tests to compare executions
    across engines. *)

val pp : Format.formatter -> t -> unit
