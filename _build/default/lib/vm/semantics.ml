module Types = Tessera_il.Types
module Opcode = Tessera_il.Opcode
module Classdef = Tessera_il.Classdef
open Values

let store_coerce ty v =
  match v with
  | Int_v x when Types.is_integral ty -> Int_v (truncate ty x)
  | Int_v x when Types.is_floating ty -> Float_v (Int64.to_float x)
  | Float_v f when Types.is_integral ty ->
      Int_v (truncate ty (Int64.of_float f))
  | v -> v

let fp_binop op a b =
  match op with
  | Opcode.Add -> a +. b
  | Opcode.Sub -> a -. b
  | Opcode.Mul -> a *. b
  | Opcode.Div -> a /. b
  | Opcode.Rem -> Float.rem a b
  | _ -> invalid_arg "Semantics.fp_binop"

let int_binop op (a : int64) (b : int64) =
  match op with
  | Opcode.Add -> Int64.add a b
  | Opcode.Sub -> Int64.sub a b
  | Opcode.Mul -> Int64.mul a b
  | Opcode.Div ->
      if Int64.equal b 0L then raise (Trap Div_by_zero) else Int64.div a b
  | Opcode.Rem ->
      if Int64.equal b 0L then raise (Trap Div_by_zero) else Int64.rem a b
  | Opcode.Or -> Int64.logor a b
  | Opcode.And -> Int64.logand a b
  | Opcode.Xor -> Int64.logxor a b
  | Opcode.Shift d -> (
      let s = Int64.to_int (Int64.logand b 63L) in
      match d with
      | Opcode.Shl -> Int64.shift_left a s
      | Opcode.Shr -> Int64.shift_right a s
      | Opcode.Ushr -> Int64.shift_right_logical a s)
  | _ -> invalid_arg "Semantics.int_binop"

let compare_values c a b =
  let num =
    match (a, b) with
    | Float_v _, _ | _, Float_v _ -> compare (as_float a) (as_float b)
    | Obj_v x, Obj_v y -> if x == y then 0 else compare (checksum a) (checksum b)
    | Arr_v x, Arr_v y -> if x == y then 0 else compare (checksum a) (checksum b)
    | _ -> Int64.compare (as_int a) (as_int b)
  in
  let r =
    match c with
    | Opcode.Eq -> num = 0
    | Opcode.Ne -> num <> 0
    | Opcode.Lt -> num < 0
    | Opcode.Le -> num <= 0
    | Opcode.Gt -> num > 0
    | Opcode.Ge -> num >= 0
  in
  Int_v (if r then 1L else 0L)

let binop op ty a b =
  match op with
  | Opcode.Compare c -> compare_values c a b
  | _ ->
      if Types.is_floating ty then Float_v (fp_binop op (as_float a) (as_float b))
      else Int_v (truncate ty (int_binop op (as_int a) (as_int b)))

let neg ty v =
  if Types.is_floating ty then Float_v (-.as_float v)
  else Int_v (truncate ty (Int64.neg (as_int v)))

let checkcast ~classes class_id v =
  match v with
  | Null_v | Arr_v _ -> v
  | Obj_v o ->
      if class_id < 0 || Classdef.is_subclass classes o.class_id class_id then v
      else raise (Trap Class_cast)
  | other -> other

let cast kind ty v =
  match kind with
  | Opcode.C_check -> v (* engines route through [checkcast] *)
  | Opcode.C_address | Opcode.C_object -> v
  | _ ->
      let target =
        match Opcode.cast_target kind with Some t -> t | None -> ty
      in
      if Types.is_floating target then Float_v (as_float v)
      else Int_v (truncate target (as_int v))

let as_obj = function
  | Obj_v o -> o
  | Null_v -> raise (Trap Null_deref)
  | _ -> raise (Trap Class_cast)

let as_arr = function
  | Arr_v a -> a
  | Null_v -> raise (Trap Null_deref)
  | _ -> raise (Trap Class_cast)

let field_load objv i =
  let o = as_obj objv in
  if i < 0 || i >= Array.length o.fields then raise (Trap Out_of_bounds);
  o.fields.(i)

let field_store objv i v =
  let o = as_obj objv in
  if i < 0 || i >= Array.length o.fields then raise (Trap Out_of_bounds);
  o.fields.(i) <- v

let index_of arrv idxv =
  let a = as_arr arrv in
  let i = Int64.to_int (as_int idxv) in
  if i < 0 || i >= Array.length a.data then raise (Trap Out_of_bounds);
  (a, i)

let elem_load arrv idxv =
  let a, i = index_of arrv idxv in
  a.data.(i)

let elem_store arrv idxv v =
  let a, i = index_of arrv idxv in
  a.data.(i) <- store_coerce a.elem v

let bounds_check arrv idxv = ignore (index_of arrv idxv)

let array_copy srcv dstv lenv =
  let src = as_arr srcv and dst = as_arr dstv in
  let len = Int64.to_int (as_int lenv) in
  if len < 0 || len > Array.length src.data || len > Array.length dst.data then
    raise (Trap Out_of_bounds);
  Array.blit src.data 0 dst.data 0 len;
  len

let array_cmp av bv =
  let a = as_arr av and b = as_arr bv in
  let n = min (Array.length a.data) (Array.length b.data) in
  let rec go i =
    if i = n then (compare (Array.length a.data) (Array.length b.data), i)
    else
      let c = compare (checksum a.data.(i)) (checksum b.data.(i)) in
      if c <> 0 then (c, i + 1) else go (i + 1)
  in
  let c, inspected = go 0 in
  (Int_v (Int64.of_int c), inspected)

let array_length v = Int_v (Int64.of_int (Array.length (as_arr v).data))

let new_obj ~classes class_id =
  if class_id < 0 || class_id >= Array.length classes then
    raise (Trap Class_cast);
  let fields = Array.map default classes.(class_id).Classdef.fields in
  Obj_v { class_id; fields }

let max_array_length = 1 lsl 20

let new_array ~elem lenv =
  let len = Int64.to_int (as_int lenv) in
  if len < 0 || len > max_array_length then raise (Trap Out_of_bounds);
  Arr_v { elem; data = Array.make len (default elem) }

let new_multiarray ~elem d1v d2v =
  let d1 = Int64.to_int (as_int d1v) and d2 = Int64.to_int (as_int d2v) in
  if d1 < 0 || d2 < 0 || d1 * max 1 d2 > max_array_length then
    raise (Trap Out_of_bounds);
  let inner () = Arr_v { elem; data = Array.make d2 (default elem) } in
  Arr_v { elem = Types.Address; data = Array.init d1 (fun _ -> inner ()) }

let instanceof ~classes class_id v =
  let r =
    match v with
    | Obj_v o -> Classdef.is_subclass classes o.class_id class_id
    | _ -> false
  in
  Int_v (if r then 1L else 0L)

let monitor = function
  | Null_v -> raise (Trap Null_deref)
  | _ -> ()

let shallow = function
  | Int_v v -> v
  | Float_v f -> Int64.bits_of_float f
  | Null_v -> 0L
  | Void_v -> 1L
  | Obj_v o -> Int64.of_int ((o.class_id * 31) + Array.length o.fields)
  | Arr_v a -> Int64.of_int (Array.length a.data)

let mixed ty args =
  let h =
    Array.fold_left
      (fun acc v -> Int64.(add (mul acc 0x100000001B3L) (shallow v)))
      0xCBF29CE484222325L args
  in
  if Types.is_floating ty then
    Float_v (Int64.to_float (Int64.shift_right_logical h 16) /. 1e6)
  else if Types.equal ty Types.Void then Void_v
  else Int_v (truncate ty h)
