module Opcode = Tessera_il.Opcode
module Types = Tessera_il.Types
module Node = Tessera_il.Node

let cycles_per_ms = 2_000_000

let interp_dispatch = 26

type codegen_quality = Q_base | Q_regalloc | Q_full

let local_access = function Q_base -> 2 | Q_regalloc -> 1 | Q_full -> 1

let quality_rank = function Q_base -> 0 | Q_regalloc -> 1 | Q_full -> 2

(* Multiplier for types without hardware support: Testarossa's long double
   and the BCD decimals are library/microcode sequences. *)
let type_factor ty =
  match ty with
  | Types.Long_double -> 4
  | Types.Packed_decimal | Types.Zoned_decimal -> 3
  | _ -> 1

let op_base op ty =
  let fp = Types.is_floating ty in
  let base =
    match op with
    | Opcode.Add | Opcode.Sub -> if fp then 3 else 1
    | Opcode.Neg -> if fp then 2 else 1
    | Opcode.Mul -> if fp then 5 else 3
    | Opcode.Div -> if fp then 24 else 28
    | Opcode.Rem -> if fp then 28 else 32
    | Opcode.Shift _ | Opcode.Or | Opcode.And | Opcode.Xor -> 1
    | Opcode.Inc -> 1
    | Opcode.Compare _ -> 1
    | Opcode.Cast k -> (
        match k with
        | Opcode.C_check -> 6
        | Opcode.C_float | Opcode.C_double | Opcode.C_longdouble -> 4
        | _ -> if fp then 4 else 1)
    | Opcode.Load -> 3 (* field/element adjustments charged by engines *)
    | Opcode.Loadconst -> 1
    | Opcode.Store -> 3
    | Opcode.New -> 70
    | Opcode.Newarray -> 80
    | Opcode.Newmultiarray -> 140
    | Opcode.Instanceof -> 6
    | Opcode.Synchronization _ -> 28
    | Opcode.Throw_op -> 30
    | Opcode.Branch_op -> 1
    | Opcode.Call -> 0 (* overhead charged by engines via call_overhead *)
    | Opcode.Arrayop Opcode.Bounds_check -> 5
    | Opcode.Arrayop Opcode.Array_copy -> 12
    | Opcode.Arrayop Opcode.Array_cmp -> 10
    | Opcode.Arrayop Opcode.Array_length -> 2
    | Opcode.Mixedop -> 6
  in
  base * type_factor ty

let flag_discount (n : Node.t) =
  let d = ref 0 in
  if Node.has_flag n Node.flag_stack_alloc then
    (d := !d + match n.op with Opcode.New -> 60 | Opcode.Newarray -> 70 | _ -> 0);
  if Node.has_flag n Node.flag_no_bounds_check then
    (d := !d + match n.op with Opcode.Arrayop Opcode.Bounds_check -> 5 | Opcode.Load | Opcode.Store -> 3 | _ -> 0);
  if Node.has_flag n Node.flag_no_null_check then
    (d := !d + match n.op with Opcode.Load | Opcode.Store | Opcode.Synchronization _ -> 2 | _ -> 0);
  if Node.has_flag n Node.flag_sync_elided then
    (d := !d + match n.op with Opcode.Synchronization _ -> 27 | _ -> 0);
  if Node.has_flag n Node.flag_no_overflow then
    (d := !d + match n.op with Opcode.Cast _ -> 1 | _ -> 0);
  min !d (op_base n.op n.ty)

let call_overhead = 40

let interp_call_overhead = 260

let per_element_copy = 2

let exception_unwind = 120
