(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Table 4, Figures 6-13), the Section 6 kernel
   study, the Section 7 pipe-overhead measurement, the ablations called
   out in DESIGN.md, and a set of Bechamel micro-benchmarks.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe figures    -- Table 4 + Figures 6-13 only
     dune exec bench/main.exe kernels    -- linear vs RBF study
     dune exec bench/main.exe pipe       -- named-pipe overhead
     dune exec bench/main.exe ablations  -- design-choice ablations
     dune exec bench/main.exe cache      -- warm vs cold start-up (BENCH_cache.json)
     dune exec bench/main.exe obs        -- tracing overhead (BENCH_obs.json)
     dune exec bench/main.exe parallel   -- -j determinism + speedup (BENCH_parallel.json)
     dune exec bench/main.exe fork       -- forking collector economy + oracle (BENCH_fork.json)
     dune exec bench/main.exe serve      -- concurrent serving fleet (BENCH_serve.json)
     dune exec bench/main.exe flat       -- flat-tier dispatch throughput (BENCH_flat.json)
     dune exec bench/main.exe profile    -- sampling profiler oracle (BENCH_profile.json)
     dune exec bench/main.exe micro      -- Bechamel micro-benchmarks
     dune exec bench/main.exe quick      -- down-scaled smoke of everything

   "serve" drives an in-process fleet of simulated clients (honest, slow,
   and byzantine) against the concurrent serving engine; with
   "--socket PATH [--clients N] [--requests R]" it instead attaches real
   Unix-socket clients to a running tessera_server (the CI smoke).

   "quick" composes with any subcommand (e.g. "figures quick"), and
   "-j N" sets the evaluation-pool domain count (default: the number of
   cores; -j 1 is the exact sequential behaviour).  Figure output is
   byte-identical for every -j — the digest line printed by "figures"
   and checked by "parallel" proves it. *)

module Harness = Tessera_harness
module Suites = Tessera_workloads.Suites
module Engine = Tessera_jit.Engine
module Plan = Tessera_opt.Plan
module Modifier = Tessera_modifiers.Modifier
module Values = Tessera_vm.Values
module Pool = Tessera_util.Pool
module Metrics = Tessera_obs.Metrics

let fmt = Format.std_formatter

let section_on fmt title =
  Format.fprintf fmt "%s@." (String.make 78 '=');
  Format.fprintf fmt "%s@." title;
  Format.fprintf fmt "%s@." (String.make 78 '=')

let section title = section_on fmt title

(* host provenance, recorded in every BENCH_*.json artifact: wall-clock
   numbers are only comparable between runs made on a known core budget
   (the regress sentinel's tolerances assume like-for-like hosts) *)
let host_cores = Domain.recommended_domain_count ()

let host_json_fields ~jobs =
  Printf.sprintf "  \"host_cores\": %d,\n  \"jobs\": %d,\n" host_cores jobs

(* collect once, reuse across experiment groups *)
let collected = ref None

let get_outcomes ~jobs cfg =
  match !collected with
  | Some o -> o
  | None ->
      let t0 = Unix.gettimeofday () in
      let o = Harness.Collection.collect_training_set ~cfg ~jobs () in
      Format.fprintf fmt "[data collection took %.1fs]@.@."
        (Unix.gettimeofday () -. t0);
      collected := Some o;
      o

(* ------------------------------------------------------------------ *)
(* Table 4 and Figures 6-13                                             *)
(* ------------------------------------------------------------------ *)

(* The figures report minus every timing line, rendered to [fmt]: what
   remains is a pure function of cfg.seed, so two renderings — whatever
   their -j — must be byte-identical.  Both "figures" (digest line) and
   "parallel" (digest comparison) rely on that. *)
let render_figures ~jobs cfg outcomes fmt =
  Harness.Report.collection_summary fmt outcomes;
  let loo = Harness.Training.train_loo ~jobs outcomes in
  Harness.Report.training_summary ~timings:false fmt loo;
  section_on fmt "Table 4";
  Harness.Report.table4 fmt loo;
  let m = Harness.Evaluation.full_matrix ~cfg ~jobs ~loo () in
  section_on fmt "Figures 6-13";
  Harness.Report.figures_6_to_13 fmt m;
  (* Section 6's cross-validation views of classifier quality *)
  section_on fmt "Classifier cross-validation (Section 6)";
  Format.fprintf fmt "5-fold CV accuracy on the merged training data:@.";
  List.iter
    (fun (a : Harness.Crossval.level_accuracy) ->
      Format.fprintf fmt "  %-8s %5.1f%%  (%d instances, %d classes)@."
        (Plan.level_name a.Harness.Crossval.level)
        (100.0 *. a.Harness.Crossval.accuracy)
        a.Harness.Crossval.instances a.Harness.Crossval.classes)
    (Harness.Crossval.kfold_accuracy (Harness.Training.records_of outcomes));
  Format.fprintf fmt
    "@.leave-one-benchmark-out label accuracy (predicting the held-out \
     benchmark's@.best modifier exactly; low absolute numbers are expected \
     — near misses can@.still be good plans):@.";
  Harness.Crossval.report fmt
    (Harness.Crossval.loo_benchmark_accuracy outcomes);
  Format.fprintf fmt "@."

let render_figures_to_string ~jobs cfg outcomes =
  let buf = Buffer.create (1 lsl 16) in
  let bfmt = Format.formatter_of_buffer buf in
  render_figures ~jobs cfg outcomes bfmt;
  Format.pp_print_flush bfmt ();
  Buffer.contents buf

let run_figures ~jobs cfg =
  let outcomes = get_outcomes ~jobs cfg in
  let t0 = Unix.gettimeofday () in
  let report = render_figures_to_string ~jobs cfg outcomes in
  let dt = Unix.gettimeofday () -. t0 in
  Format.fprintf fmt "%s" report;
  Format.fprintf fmt "[train+evaluation took %.1fs at -j %d]@." dt jobs;
  Format.fprintf fmt "[figures digest: %s]@.@."
    (Digest.to_hex (Digest.string report))

(* ------------------------------------------------------------------ *)
(* Parallel evaluation: -j determinism and speedup (BENCH_parallel.json) *)
(* ------------------------------------------------------------------ *)

let run_parallel ~jobs cfg =
  section "Parallel evaluation: sequential vs -j N (determinism + speedup)";
  (* the full collect -> train -> evaluate -> render pipeline, end to
     end, at a given domain count; fresh collection each time so both
     legs pay the same cost *)
  let measure jobs =
    let t0 = Unix.gettimeofday () in
    let outcomes = Harness.Collection.collect_training_set ~cfg ~jobs () in
    let report = render_figures_to_string ~jobs cfg outcomes in
    (report, Unix.gettimeofday () -. t0)
  in
  let par_jobs = max 2 (if jobs > 1 then jobs else Pool.default_jobs ()) in
  let seq_report, seq_s = measure 1 in
  Format.fprintf fmt "sequential (-j 1)  : %7.1fs@." seq_s;
  let par_report, par_s = measure par_jobs in
  Format.fprintf fmt "parallel  (-j %-2d)  : %7.1fs (%.2fx)@." par_jobs par_s
    (seq_s /. Float.max 1e-9 par_s);
  let seq_digest = Digest.to_hex (Digest.string seq_report) in
  let par_digest = Digest.to_hex (Digest.string par_report) in
  let identical = String.equal seq_report par_report in
  if identical then
    Format.fprintf fmt "figures digest     : %s (identical at both -j)@."
      seq_digest
  else
    Format.fprintf fmt
      "figures digest     : MISMATCH (-j 1: %s, -j %d: %s)@." seq_digest
      par_jobs par_digest;
  let json =
    Printf.sprintf
      "{\n\
      \  \"quick\": %b,\n\
      %s\
      \  \"seq_jobs\": 1,\n\
      \  \"par_jobs\": %d,\n\
      \  \"seq_wall_s\": %.3f,\n\
      \  \"par_wall_s\": %.3f,\n\
      \  \"speedup\": %.3f,\n\
      \  \"digests_identical\": %b,\n\
      \  \"seq_digest\": %S,\n\
      \  \"par_digest\": %S\n\
       }\n"
      (cfg == Harness.Expconfig.quick)
      (host_json_fields ~jobs) par_jobs seq_s par_s
      (seq_s /. Float.max 1e-9 par_s)
      identical seq_digest par_digest
  in
  Tessera_util.Fileio.atomic_write ~path:"BENCH_parallel.json" json;
  Format.fprintf fmt "[wrote BENCH_parallel.json]@.@.";
  if not identical then begin
    Format.fprintf fmt
      "FAILED: parallel evaluation diverged from the sequential baseline@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Compilation forking: the full training matrix from one warm run      *)
(* (BENCH_fork.json)                                                    *)
(* ------------------------------------------------------------------ *)

(* Two legs: (1) records-per-trunk-invocation of the forking collector
   vs the sweep (queue) collector over the whole training set — the
   forking paper's headline economy; (2) the differential oracle — the
   snapshot-based branches must produce an archive record-for-record
   equal to branches measured from a fully re-executed fork point. *)
let run_fork_bench ~jobs cfg =
  section
    "Compilation forking: full training matrix from one warm run \
     (BENCH_fork.json)";
  let quick = cfg == Harness.Expconfig.quick in
  (* Both collectors run over the same two training benchmarks at half
     workload scale — enough diversity for a fair records-per-invocation
     comparison without paying for the whole suite — and the forking
     side measures the {e default} fan-out (the full candidate set whose
     one-warm-run economy is the point), whatever the quick scaling says. *)
  let cfg =
    {
      cfg with
      Harness.Expconfig.bench_scale = cfg.Harness.Expconfig.bench_scale *. 0.5;
      fork_fanout = Harness.Expconfig.default.Harness.Expconfig.fork_fanout;
    }
  in
  let benches = List.filteri (fun i _ -> i < 2) Suites.training_set in
  let totals outcomes =
    List.fold_left
      (fun (recs, invs) (o : Harness.Collection.outcome) ->
        ( recs
          + List.length
              o.Harness.Collection.merged.Tessera_collect.Archive.records,
          invs
          + List.fold_left
              (fun a (s : Tessera_collect.Collector.stats) ->
                a + s.Tessera_collect.Collector.entry_invocations)
              0 o.Harness.Collection.stats ))
      (0, 0) outcomes
  in
  let t0 = Unix.gettimeofday () in
  let sweep =
    Pool.run_list ~jobs (Harness.Collection.collect_bench ~cfg) benches
  in
  let sweep_s = Unix.gettimeofday () -. t0 in
  let sweep_records, sweep_invs = totals sweep in
  let t0 = Unix.gettimeofday () in
  let forked =
    List.map
      (Harness.Collection.collect_bench ~cfg ~fork:true ~fork_jobs:jobs)
      benches
  in
  let fork_s = Unix.gettimeofday () -. t0 in
  let fork_records, fork_invs = totals forked in
  let fork_stat f =
    List.fold_left
      (fun a (o : Harness.Collection.outcome) ->
        List.fold_left
          (fun a (s : Tessera_collect.Collector.stats) -> a + f s)
          a o.Harness.Collection.stats)
      0 forked
  in
  let forks = fork_stat (fun s -> s.Tessera_collect.Collector.forks) in
  let branches = fork_stat (fun s -> s.Tessera_collect.Collector.branches) in
  let branch_invs =
    fork_stat (fun s -> s.Tessera_collect.Collector.branch_invocations)
  in
  let skipped =
    fork_stat (fun s -> s.Tessera_collect.Collector.skipped_decisions)
  in
  let rpi records invs = float_of_int records /. float_of_int (max 1 invs) in
  let sweep_rpi = rpi sweep_records sweep_invs in
  let fork_rpi = rpi fork_records fork_invs in
  let gain = fork_rpi /. Float.max 1e-9 sweep_rpi in
  Format.fprintf fmt
    "sweep collector : %5d records / %5d invocations = %.3f records/inv \
     (%.1fs)@."
    sweep_records sweep_invs sweep_rpi sweep_s;
  Format.fprintf fmt
    "fork collector  : %5d records / %5d trunk invocations = %.3f \
     records/inv (%.1fs)@."
    fork_records fork_invs fork_rpi fork_s;
  Format.fprintf fmt
    "                  %d fork points, %d branches, %d branch invocations, \
     %d skipped@."
    forks branches branch_invs skipped;
  Format.fprintf fmt "records-per-invocation gain: %.1fx (target >= 5x)@." gain;
  (* -- differential oracle on the first training benchmark, down-scaled:
     correctness, not a timing figure -- *)
  let oracle_bench =
    Suites.scale_bench (List.hd Suites.training_set)
      cfg.Harness.Expconfig.bench_scale
  in
  let program = Tessera_workloads.Generate.program oracle_bench.Suites.profile in
  let run_oracle reexec =
    Tessera_collect.Collector.run
      ~config:
        {
          Tessera_collect.Collector.default_config with
          Tessera_collect.Collector.search =
            Tessera_collect.Collector.Fork
              {
                strategy = Tessera_modifiers.Queue_ctrl.Progressive { l = 30 };
                fanout = 4;
                jobs;
                reexec;
              };
          uses_per_modifier = min 4 cfg.Harness.Expconfig.uses_per_modifier;
          seed = Int64.add cfg.Harness.Expconfig.seed 2L;
          max_entry_invocations =
            min 60 cfg.Harness.Expconfig.collect_invocations;
        }
      ~program ~benchmark:"fork-oracle"
      ~entry_args:(fun k -> [| Values.Int_v (Int64.of_int k) |])
      ()
  in
  let t0 = Unix.gettimeofday () in
  let snap_archive, snap_stats = run_oracle false in
  let snap_s = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let reexec_archive, _ = run_oracle true in
  let reexec_s = Unix.gettimeofday () -. t0 in
  let oracle_ok = Tessera_collect.Archive.equal snap_archive reexec_archive in
  Format.fprintf fmt
    "oracle          : snapshot %.2fs vs re-execution %.2fs over %d records \
     -> %s@."
    snap_s reexec_s
    (List.length snap_archive.Tessera_collect.Archive.records)
    (if oracle_ok then "identical archives" else "MISMATCH");
  let json =
    Printf.sprintf
      "{\n\
      \  \"quick\": %b,\n\
       %s\
      \  \"sweep_records\": %d,\n\
      \  \"sweep_invocations\": %d,\n\
      \  \"sweep_wall_s\": %.3f,\n\
      \  \"fork_records\": %d,\n\
      \  \"fork_trunk_invocations\": %d,\n\
      \  \"fork_points\": %d,\n\
      \  \"fork_branches\": %d,\n\
      \  \"fork_branch_invocations\": %d,\n\
      \  \"fork_skipped_decisions\": %d,\n\
      \  \"fork_wall_s\": %.3f,\n\
      \  \"records_per_invocation_sweep\": %.4f,\n\
      \  \"records_per_invocation_fork\": %.4f,\n\
      \  \"records_per_invocation_gain\": %.4f,\n\
      \  \"oracle_records\": %d,\n\
      \  \"oracle_branches\": %d,\n\
      \  \"oracle_snapshot_wall_s\": %.3f,\n\
      \  \"oracle_reexec_wall_s\": %.3f,\n\
      \  \"oracle_ok\": %b\n\
       }\n"
      quick
      (host_json_fields ~jobs) sweep_records sweep_invs sweep_s fork_records
      fork_invs forks branches branch_invs skipped fork_s sweep_rpi fork_rpi
      gain
      (List.length snap_archive.Tessera_collect.Archive.records)
      snap_stats.Tessera_collect.Collector.branches snap_s reexec_s oracle_ok
  in
  Tessera_util.Fileio.atomic_write ~path:"BENCH_fork.json" json;
  Format.fprintf fmt "[wrote BENCH_fork.json]@.@.";
  if not oracle_ok then begin
    Format.fprintf fmt
      "FAILED: forked archive diverged from the re-executed baseline@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Section 6: kernel selection study                                    *)
(* ------------------------------------------------------------------ *)

let run_kernels ~jobs cfg =
  section "Section 6 kernel study: linear (MCSVM_CS) vs non-linear (RBF)";
  let outcomes = get_outcomes ~jobs cfg in
  let records = Harness.Training.records_of outcomes in
  let ts = Tessera_dataproc.Trainset.build ~level:Plan.Hot records in
  let problem = Tessera_dataproc.Trainset.problem ts in
  Format.fprintf fmt "hot-level training set: %d instances, %d classes@."
    (Tessera_svm.Problem.n_instances problem)
    (Tessera_svm.Problem.n_classes problem);
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let linear, linear_train = time (fun () -> Tessera_svm.Cs.train problem) in
  let rbf, rbf_train =
    time (fun () ->
        Tessera_svm.Rbf.train
          ~params:
            { Tessera_svm.Rbf.default_params with Tessera_svm.Rbf.gamma = 0.5 }
          problem)
  in
  let x = problem.Tessera_svm.Problem.x in
  let predict_time n predict =
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      ignore (predict x.(i mod Array.length x))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6
  in
  let lin_us = predict_time 20_000 (Tessera_svm.Model.predict linear) in
  let rbf_us = predict_time 2_000 (Tessera_svm.Rbf.predict rbf) in
  Format.fprintf fmt "training time : linear %.3fs, RBF %.3fs@." linear_train
    rbf_train;
  Format.fprintf fmt
    "prediction    : linear %.2f us, RBF %.2f us (%d support vectors; RBF \
     %.0fx slower)@."
    lin_us rbf_us
    (Tessera_svm.Rbf.support_vector_count rbf)
    (rbf_us /. Float.max 1e-9 lin_us);
  Format.fprintf fmt
    "paper's finding: only the linear kernel predicts fast enough for a \
     JIT's budget@.(48 us vs up to 660 ms in the paper); the gap grows with \
     the training-set size.@.@."

(* ------------------------------------------------------------------ *)
(* Section 7: named-pipe overhead                                       *)
(* ------------------------------------------------------------------ *)

let run_pipe_overhead ~jobs cfg =
  section "Section 7: model-query overhead (in-process vs named pipes)";
  let outcomes = get_outcomes ~jobs cfg in
  let ms = Harness.Training.train_on_all ~name:"pipe" outcomes in
  let features = Array.make Tessera_features.Features.dim 0.5 in
  let predictor = Harness.Modelset.server_predictor ms in
  let t0 = Unix.gettimeofday () in
  let n = 20_000 in
  for _ = 1 to n do
    ignore (predictor ~level:Plan.Hot ~features)
  done;
  let direct_us = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6 in
  let dir = Filename.get_temp_dir_name () in
  let path_a =
    Filename.concat dir (Printf.sprintf "tsr_bench_%d.a" (Unix.getpid ()))
  in
  let path_b =
    Filename.concat dir (Printf.sprintf "tsr_bench_%d.b" (Unix.getpid ()))
  in
  let open_a, open_b = Tessera_protocol.Channel.fifo_pair ~path_a ~path_b in
  let fifo_us =
    match Unix.fork () with
    | 0 ->
        let ch = open_a () in
        Tessera_protocol.Server.serve ch predictor;
        Unix._exit 0
    | pid ->
        let ch = open_b () in
        let client = Tessera_protocol.Client.connect ~model_name:"bench" ch in
        let n = 2_000 in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to n do
          ignore
            (Tessera_protocol.Client.predict client ~level:Plan.Hot ~features)
        done;
        let dt = (Unix.gettimeofday () -. t0) /. float_of_int n *. 1e6 in
        Tessera_protocol.Client.shutdown client;
        ignore (Unix.waitpid [] pid);
        List.iter (fun p -> try Sys.remove p with _ -> ()) [ path_a; path_b ];
        dt
  in
  Format.fprintf fmt
    "prediction round-trip: in-process %.2f us, named pipes %.2f us@."
    direct_us fifo_us;
  Format.fprintf fmt
    "a hot compilation takes hundreds of simulated microseconds, so the \
     pipe@.overhead is negligible relative to compilation, as the paper \
     found.@.@."

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let run_bench_pair ~cfg ?model bench =
  let startup =
    Harness.Evaluation.run_once ~cfg ?model ~bench ~iterations:1 ~trial:0 ()
  in
  let thr =
    Harness.Evaluation.run_once ~cfg ?model ~bench
      ~iterations:cfg.Harness.Expconfig.throughput_iterations ~trial:0 ()
  in
  (startup, thr)

let ablate_sync cfg =
  section "Ablation: asynchronous vs synchronous compilation";
  Format.fprintf fmt
    "(start-up behaviour hinges on compilation overlapping execution)@.";
  List.iter
    (fun name ->
      let bench = Option.get (Suites.find name) in
      let bench = Suites.scale_bench bench cfg.Harness.Expconfig.bench_scale in
      let program = Tessera_workloads.Generate.program bench.Suites.profile in
      let run async =
        let engine =
          Engine.create
            ~config:{ Engine.default_config with Engine.async_compile = async }
            program
        in
        for k = 0 to bench.Suites.iteration_invocations - 1 do
          ignore (Engine.invoke_entry engine [| Values.Int_v (Int64.of_int k) |])
        done;
        Engine.app_cycles engine
      in
      let a = run true and s = run false in
      Format.fprintf fmt
        "%-12s start-up: async %8.2fM cycles, sync %8.2fM cycles (async %.2fx \
         faster)@."
        name
        (Int64.to_float a /. 1e6)
        (Int64.to_float s /. 1e6)
        (Int64.to_float s /. Int64.to_float a))
    [ "compress"; "db"; "javac" ];
  Format.fprintf fmt "@."

let ablate_search ~jobs cfg =
  section "Ablation: randomized vs progressive vs merged search data";
  let outcomes = get_outcomes ~jobs cfg in
  let strategies =
    [
      ( "randomized",
        List.map
          (fun (o : Harness.Collection.outcome) -> o.Harness.Collection.randomized)
          outcomes );
      ( "progressive",
        List.map
          (fun (o : Harness.Collection.outcome) -> o.Harness.Collection.progressive)
          outcomes );
      ( "merged",
        List.map
          (fun (o : Harness.Collection.outcome) -> o.Harness.Collection.merged)
          outcomes );
    ]
  in
  let bench =
    Suites.scale_bench
      (Option.get (Suites.find "jess"))
      cfg.Harness.Expconfig.bench_scale
  in
  let base_s, base_t = run_bench_pair ~cfg bench in
  List.iter
    (fun (name, archives) ->
      let records =
        List.concat_map
          (fun (a : Tessera_collect.Archive.t) -> a.Tessera_collect.Archive.records)
          archives
      in
      let ms = Harness.Modelset.train ~name records in
      let s, t = run_bench_pair ~cfg ~model:ms bench in
      Format.fprintf fmt
        "%-12s start-up %.3fx, throughput %.3fx, compile time %.3fx@." name
        (Int64.to_float base_s.Harness.Evaluation.app_cycles
        /. Int64.to_float s.Harness.Evaluation.app_cycles)
        (Int64.to_float base_t.Harness.Evaluation.app_cycles
        /. Int64.to_float t.Harness.Evaluation.app_cycles)
        (Int64.to_float t.Harness.Evaluation.compile_cycles
        /. Int64.to_float base_t.Harness.Evaluation.compile_cycles))
    strategies;
  (* the paper's future work: heuristic-guided search during collection *)
  let guided_records =
    List.concat_map
      (fun (b : Suites.bench) ->
        let bs = Suites.scale_bench b cfg.Harness.Expconfig.bench_scale in
        let program = Tessera_workloads.Generate.program bs.Suites.profile in
        let archive, _ =
          Tessera_collect.Collector.run
            ~config:
              {
                Tessera_collect.Collector.default_config with
                Tessera_collect.Collector.search =
                  Tessera_collect.Collector.Guided
                    Tessera_modifiers.Guided.default_params;
                max_entry_invocations = cfg.Harness.Expconfig.collect_invocations;
              }
            ~program
            ~benchmark:(bs.Suites.profile.Tessera_workloads.Profile.name ^ ":guided")
            ~entry_args:(fun k -> [| Values.Int_v (Int64.of_int k) |])
            ()
        in
        archive.Tessera_collect.Archive.records)
      Suites.training_set
  in
  let ms = Harness.Modelset.train ~name:"guided" guided_records in
  let s, t = run_bench_pair ~cfg ~model:ms bench in
  Format.fprintf fmt
    "%-12s start-up %.3fx, throughput %.3fx, compile time %.3fx@."
    "guided"
    (Int64.to_float base_s.Harness.Evaluation.app_cycles
    /. Int64.to_float s.Harness.Evaluation.app_cycles)
    (Int64.to_float base_t.Harness.Evaluation.app_cycles
    /. Int64.to_float t.Harness.Evaluation.app_cycles)
    (Int64.to_float t.Harness.Evaluation.compile_cycles
    /. Int64.to_float base_t.Harness.Evaluation.compile_cycles);
  Format.fprintf fmt
    "(merged vs either search alone mirrors the paper; 'guided' is the \
     paper's@.Section-5 future work, implemented here as per-method hill \
     climbing on Eq. 2)@.@."

let ablate_rank ~jobs cfg =
  section "Ablation: ranking selection rule (best-1 vs top-3 within 95%)";
  let outcomes = get_outcomes ~jobs cfg in
  let records = Harness.Training.records_of outcomes in
  List.iter
    (fun (label, max_per_vector) ->
      let sizes =
        List.map
          (fun level ->
            List.length (Tessera_dataproc.Rank.rank ~max_per_vector ~level records))
          [ Plan.Cold; Plan.Warm; Plan.Hot ]
      in
      Format.fprintf fmt "%-10s training instances cold/warm/hot: %s@." label
        (String.concat " / " (List.map string_of_int sizes)))
    [ ("best-1", 1); ("top-3", 3); ("top-5", 5) ];
  Format.fprintf fmt "@."

let ablate_solver ~jobs cfg =
  section "Ablation: one-vs-rest vs Crammer-Singer multiclass solver";
  let outcomes = get_outcomes ~jobs cfg in
  let bench =
    Suites.scale_bench
      (Option.get (Suites.find "jack"))
      cfg.Harness.Expconfig.bench_scale
  in
  let base_s, _ = run_bench_pair ~cfg bench in
  List.iter
    (fun (label, solver) ->
      let t0 = Unix.gettimeofday () in
      let ms = Harness.Training.train_on_all ~solver ~name:label outcomes in
      let train_t = Unix.gettimeofday () -. t0 in
      let s, _ = run_bench_pair ~cfg ~model:ms bench in
      Format.fprintf fmt "%-16s trained in %.2fs, start-up %.3fx@." label
        train_t
        (Int64.to_float base_s.Harness.Evaluation.app_cycles
        /. Int64.to_float s.Harness.Evaluation.app_cycles))
    [
      ("one-vs-rest", Harness.Modelset.Ovr);
      ("crammer-singer", Harness.Modelset.Crammer_singer);
    ];
  Format.fprintf fmt "@."

let run_ablations ~jobs cfg =
  ablate_sync cfg;
  ablate_search ~jobs cfg;
  ablate_rank ~jobs cfg;
  ablate_solver ~jobs cfg

(* ------------------------------------------------------------------ *)
(* Start-up -> throughput crossover                                     *)
(* ------------------------------------------------------------------ *)

(* Not a figure of the paper, but the mechanism behind Figures 6 vs 10:
   the learned models' lead is built during the compilation wave and is
   then eroded at the paper's quality-sensitive steady state. *)
let run_crossover ~jobs cfg =
  section "Crossover: cumulative relative performance per iteration";
  let outcomes = get_outcomes ~jobs cfg in
  let loo = Harness.Training.train_loo ~jobs outcomes in
  let model_for (b : Suites.bench) =
    match
      List.find_opt
        (fun (s : Harness.Training.loo_set) ->
          s.Harness.Training.excluded_tag = b.Suites.tag)
        loo
    with
    | Some s -> s.Harness.Training.modelset
    | None -> (List.hd loo).Harness.Training.modelset
  in
  List.iter
    (fun name ->
      let bench = Option.get (Suites.find name) in
      let bench = Suites.scale_bench bench cfg.Harness.Expconfig.bench_scale in
      let series ?model () =
        let program = Tessera_workloads.Generate.program bench.Suites.profile in
        let callbacks =
          match model with
          | None -> Engine.no_callbacks
          | Some ms ->
              {
                Engine.no_callbacks with
                Engine.choose_modifier = Some (Harness.Modelset.choose_modifier ms);
              }
        in
        let engine = Engine.create ~callbacks program in
        Array.init 12 (fun it ->
            for j = 0 to bench.Suites.iteration_invocations - 1 do
              ignore
                (Engine.invoke_entry engine
                   [| Values.Int_v (Int64.of_int ((it * 31) + j)) |])
            done;
            Engine.app_cycles engine)
      in
      let base = series () in
      let model = series ~model:(model_for bench) () in
      Format.fprintf fmt "%-10s " name;
      Array.iteri
        (fun i b ->
          Format.fprintf fmt "%5.3f "
            (Int64.to_float b /. Int64.to_float model.(i)))
        base;
      Format.fprintf fmt "@.")
    [ "compress"; "db"; "jack"; "luindex" ];
  Format.fprintf fmt
    "(columns = iterations 1..12; >1 means the learned model is ahead; the \
     lead@.from the compile wave erodes as the steady state exposes plan \
     quality)@.@."

(* ------------------------------------------------------------------ *)
(* Platform sensitivity                                                 *)
(* ------------------------------------------------------------------ *)

(* The paper's Section-1 motivation: compilation plans tuned for one
   platform may need redesign on another.  Deploy models trained on the
   default target (zircon) onto a RISC-ish target (obsidian) and compare
   with models trained on obsidian data. *)
let run_platform ~jobs cfg =
  section "Platform sensitivity (Section 1's motivation)";
  let outcomes_zircon = get_outcomes ~jobs cfg in
  let zircon_model =
    Harness.Training.train_on_all ~name:"zircon-trained" outcomes_zircon
  in
  let obsidian = Tessera_vm.Target.obsidian in
  let t0 = Unix.gettimeofday () in
  let outcomes_obsidian =
    Harness.Collection.collect_training_set ~cfg ~target:obsidian ~jobs ()
  in
  Format.fprintf fmt "[obsidian collection took %.1fs]@."
    (Unix.gettimeofday () -. t0);
  let obsidian_model =
    Harness.Training.train_on_all ~name:"obsidian-trained" outcomes_obsidian
  in
  List.iter
    (fun name ->
      let bench = Option.get (Suites.find name) in
      let startup ?model target =
        (Harness.Evaluation.run_once ~cfg ~target ?model ~bench ~iterations:1
           ~trial:0 ())
          .Harness.Evaluation.app_cycles
      in
      let base = startup obsidian in
      let cross = startup ~model:zircon_model obsidian in
      let native = startup ~model:obsidian_model obsidian in
      let home = startup ~model:zircon_model Tessera_vm.Target.zircon in
      let home_base = startup Tessera_vm.Target.zircon in
      Format.fprintf fmt
        "%-10s on zircon: home-trained %.3fx | on obsidian: cross-deployed \
         %.3fx, natively trained %.3fx@."
        name
        (Int64.to_float home_base /. Int64.to_float home)
        (Int64.to_float base /. Int64.to_float cross)
        (Int64.to_float base /. Int64.to_float native))
    [ "compress"; "db"; "h2" ];
  Format.fprintf fmt
    "(the learned approach transfers: zircon-trained models still help on \
     obsidian@.without any per-platform hand-tuning — automating exactly \
     the porting cost the@.paper's introduction motivates; retraining on \
     the deployment target is a data-@.collection run, not a \
     compiler-engineering effort)@.@."

(* ------------------------------------------------------------------ *)
(* Warm-start vs cold-start (persistent code cache)                     *)
(* ------------------------------------------------------------------ *)

module Codecache = Tessera_cache.Codecache

(* Start-up cost is exactly what a persistent code cache attacks: run
   the same workload cold (empty cache), warm (second run over the same
   cache dir), and warm read-only, and emit BENCH_cache.json with
   time-to-steady-state (app cycles at the end of iteration 1) and the
   total compile bill of each mode. *)
let run_cache ~jobs cfg =
  section "Warm-start vs cold-start (persistent code cache)";
  let bench =
    Suites.scale_bench
      (Option.get (Suites.find "compress"))
      cfg.Harness.Expconfig.bench_scale
  in
  let iterations = 3 in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tessera_bench_cache_%d" (Unix.getpid ()))
  in
  let clear () =
    if Sys.file_exists dir then begin
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir
    end
  in
  let run ~readonly () =
    let cache = Codecache.create ~dir ~capacity_mb:64 ~readonly () in
    let program = Tessera_workloads.Generate.program bench.Suites.profile in
    let engine =
      Engine.create
        ~config:{ Engine.default_config with Engine.code_cache = Some cache }
        program
    in
    let marks =
      Array.init iterations (fun it ->
          for j = 0 to bench.Suites.iteration_invocations - 1 do
            ignore
              (Engine.invoke_entry engine
                 [| Values.Int_v (Int64.of_int ((it * 31) + j)) |])
          done;
          Engine.app_cycles engine)
    in
    Codecache.close cache;
    ( marks,
      Engine.total_compile_cycles engine,
      Engine.compile_count engine,
      Engine.cache_hits engine )
  in
  clear ();
  (* let-sequenced: list elements would evaluate right-to-left *)
  let cold = run ~readonly:false () in
  let warm = run ~readonly:false () in
  let warm_readonly = run ~readonly:true () in
  let runs =
    [ ("cold", cold); ("warm", warm); ("warm_readonly", warm_readonly) ]
  in
  List.iter
    (fun (name, (marks, compile_cycles, compilations, aot_loads)) ->
      Format.fprintf fmt
        "%-14s time-to-steady %8.2fM cycles, total %8.2fM, compile %8.2fM \
         (%d compilations, %d AOT loads)@."
        name
        (Int64.to_float marks.(0) /. 1e6)
        (Int64.to_float marks.(iterations - 1) /. 1e6)
        (Int64.to_float compile_cycles /. 1e6)
        compilations aot_loads)
    runs;
  let json =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"benchmark\": %S,\n  \"iterations\": %d,\n"
         bench.Suites.profile.Tessera_workloads.Profile.name iterations);
    Buffer.add_string buf (host_json_fields ~jobs);
    Buffer.add_string buf "  \"runs\": {\n";
    List.iteri
      (fun i (name, (marks, compile_cycles, compilations, aot_loads)) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    %S: {\"time_to_steady_state_cycles\": %Ld, \
              \"total_app_cycles\": %Ld, \"compile_cycles\": %Ld, \
              \"compilations\": %d, \"aot_loads\": %d}%s\n"
             name marks.(0)
             marks.(iterations - 1)
             compile_cycles compilations aot_loads
             (if i < List.length runs - 1 then "," else "")))
      runs;
    Buffer.add_string buf "  },\n";
    let tts name = (fun (m, _, _, _) -> m.(0)) (List.assoc name runs) in
    Buffer.add_string buf
      (Printf.sprintf "  \"warm_tts_speedup\": %.4f\n"
         (Int64.to_float (tts "cold") /. Int64.to_float (tts "warm")));
    Buffer.add_string buf "}\n";
    Buffer.contents buf
  in
  Tessera_util.Fileio.atomic_write ~path:"BENCH_cache.json" json;
  Format.fprintf fmt "[wrote BENCH_cache.json]@.@.";
  clear ()

(* ------------------------------------------------------------------ *)
(* Observability overhead                                               *)
(* ------------------------------------------------------------------ *)

module Trace = Tessera_obs.Trace

(* The tracing discipline promises that a disabled ring costs one
   load-and-branch per event site.  Run the same workload with tracing
   off and on and emit BENCH_obs.json with the wall-clock overhead of
   the on state (budget: <3%). *)
let run_obs ~jobs cfg =
  section "Observability overhead (tracing off vs on)";
  let bench =
    Suites.scale_bench
      (Option.get (Suites.find "compress"))
      cfg.Harness.Expconfig.bench_scale
  in
  let program = Tessera_workloads.Generate.program bench.Suites.profile in
  let iterations = 3 in
  let run () =
    let engine = Engine.create program in
    for it = 0 to iterations - 1 do
      for j = 0 to bench.Suites.iteration_invocations - 1 do
        ignore
          (Engine.invoke_entry engine
             [| Values.Int_v (Int64.of_int ((it * 31) + j)) |])
      done
    done
  in
  let time_best reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  run () (* warm the code paths once before timing *);
  Trace.disable ();
  Trace.reset ();
  let reps = 5 in
  let off_s = time_best reps run in
  Trace.enable ();
  let on_s = time_best reps run in
  let events = Trace.length () in
  let dropped = Trace.dropped () in
  Trace.disable ();
  Trace.reset ();
  Trace.clear_cycle_source ();
  let overhead_pct = (on_s -. off_s) /. off_s *. 100.0 in
  Format.fprintf fmt
    "%-10s disabled %.2f ms, enabled %.2f ms (overhead %+.2f%%; %d events \
     buffered, %d dropped)@."
    bench.Suites.profile.Tessera_workloads.Profile.name (off_s *. 1e3)
    (on_s *. 1e3) overhead_pct events dropped;
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": %S,\n\
      \  \"iterations\": %d,\n\
      \  \"reps\": %d,\n\
      %s\
      \  \"disabled_wall_s\": %.6f,\n\
      \  \"enabled_wall_s\": %.6f,\n\
      \  \"overhead_pct\": %.4f,\n\
      \  \"events\": %d,\n\
      \  \"dropped\": %d\n\
       }\n"
      bench.Suites.profile.Tessera_workloads.Profile.name iterations reps
      (host_json_fields ~jobs) off_s on_s overhead_pct events dropped
  in
  Tessera_util.Fileio.atomic_write ~path:"BENCH_obs.json" json;
  Format.fprintf fmt "[wrote BENCH_obs.json]@.@."

(* ------------------------------------------------------------------ *)
(* Flat execution tier: dispatch throughput (BENCH_flat.json)           *)
(* ------------------------------------------------------------------ *)

module Il_program = Tessera_il.Program
module Interp = Tessera_vm.Interp
module Flat_prog = Tessera_flat.Prog
module Flat_interp = Tessera_flat.Interp

(* The flat tier's contract: bit-identical virtual cycles, less host
   time per virtual cycle.  Run the same all-interpreted workload
   through the tree walker, the flat dispatch loop, and the flat loop
   with superinstructions; assert the three legs charge exactly the
   same cycles; and emit BENCH_flat.json with the dispatch throughput
   (virtual cycles retired per wall second) of each leg plus the
   opcode-pair census behind the fusion table. *)
let run_flat ~jobs cfg =
  section "Flat execution tier: tree walker vs threaded code";
  let quick = cfg == Harness.Expconfig.quick in
  let reps = if quick then 3 else 5 in
  let fuel_budget = Engine.default_config.Engine.fuel_per_invocation in
  let time_best f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let per_bench =
    List.map
      (fun name ->
        let bench =
          Suites.scale_bench
            (Option.get (Suites.find name))
            cfg.Harness.Expconfig.bench_scale
        in
        let program = Tessera_workloads.Generate.program bench.Suites.profile in
        let n = Il_program.method_count program in
        let base =
          Array.init n (fun i -> Flat_prog.of_meth (Il_program.meth program i))
        in
        let fused = Array.map Flat_prog.fuse base in
        (* one all-interpreted leg: a raw context whose invoke closure
           recurses through the same dispatcher for every callee *)
        let leg exec =
          let cycles = ref 0L in
          let fuel = ref 0 in
          let rec ctx =
            {
              Interp.classes = program.Il_program.classes;
              charge =
                (fun c -> cycles := Int64.add !cycles (Int64.of_int c));
              invoke = (fun id args -> exec ctx id args);
              fuel;
            }
          in
          let iteration () =
            for j = 0 to bench.Suites.iteration_invocations - 1 do
              fuel := fuel_budget;
              try
                ignore
                  (exec ctx program.Il_program.entry
                     [| Values.Int_v (Int64.of_int j) |])
              with Values.Trap _ -> ()
            done
          in
          iteration () (* warm the host code paths before timing *);
          cycles := 0L;
          iteration ();
          let per_iter = !cycles in
          (per_iter, time_best iteration)
        in
        let tree_cycles, tree_s =
          leg (fun ctx id args -> Interp.run ctx (Il_program.meth program id) args)
        in
        let flat_cycles, flat_s =
          leg (fun ctx id args -> Flat_interp.run ctx base.(id) args)
        in
        let super_cycles, super_s =
          leg (fun ctx id args -> Flat_interp.run ctx fused.(id) args)
        in
        if tree_cycles <> flat_cycles || tree_cycles <> super_cycles then
          failwith
            (Printf.sprintf
               "flat tier charged different cycles on %s: tree %Ld, flat \
                %Ld, flat+super %Ld"
               name tree_cycles flat_cycles super_cycles);
        let fused_sites =
          Array.fold_left (fun a p -> a + p.Flat_prog.fused_pairs) 0 fused
        in
        (* opcode-pair census over the unfused programs: the data the
           compile-time fusion table was derived from *)
        let pairs = Array.make (Flat_prog.kind_count * Flat_prog.kind_count) 0 in
        let () =
          let fuel = ref 0 in
          let rec ctx =
            {
              Interp.classes = program.Il_program.classes;
              charge = (fun _ -> ());
              invoke =
                (fun id args -> Flat_interp.run_counted ~pairs ctx base.(id) args);
              fuel;
            }
          in
          for j = 0 to bench.Suites.iteration_invocations - 1 do
            fuel := fuel_budget;
            try
              ignore
                (Flat_interp.run_counted ~pairs ctx base.(program.Il_program.entry)
                   [| Values.Int_v (Int64.of_int j) |])
            with Values.Trap _ -> ()
          done
        in
        let top_pairs =
          let all = ref [] in
          Array.iteri
            (fun i c -> if c > 0 then all := (i, c) :: !all)
            pairs;
          List.filteri
            (fun i _ -> i < 8)
            (List.sort (fun (_, a) (_, b) -> compare b a) !all)
          |> List.map (fun (i, c) ->
                 ( Flat_prog.kind_name (i / Flat_prog.kind_count),
                   Flat_prog.kind_name (i mod Flat_prog.kind_count),
                   c ))
        in
        Format.fprintf fmt
          "%-10s %8.2fM cycles/iter | tree %7.2f Mcyc/s | flat %7.2f \
           Mcyc/s (%.3fx) | +super %7.2f Mcyc/s (%.3fx, %d fused sites)@."
          name
          (Int64.to_float tree_cycles /. 1e6)
          (Int64.to_float tree_cycles /. tree_s /. 1e6)
          (Int64.to_float tree_cycles /. flat_s /. 1e6)
          (tree_s /. flat_s)
          (Int64.to_float tree_cycles /. super_s /. 1e6)
          (tree_s /. super_s) fused_sites;
        (name, tree_cycles, tree_s, flat_s, super_s, fused_sites, top_pairs))
      [ "compress"; "db"; "jack" ]
  in
  let geomean f =
    exp
      (List.fold_left (fun a r -> a +. log (f r)) 0.0 per_bench
      /. float_of_int (List.length per_bench))
  in
  let flat_speedup = geomean (fun (_, _, t, f, _, _, _) -> t /. f) in
  let super_speedup = geomean (fun (_, _, t, _, s, _, _) -> t /. s) in
  (* fraction of the flat tier's win contributed by superinstruction
     fusion (0 = fusion does nothing, 1 = the whole win is fusion) *)
  let super_share =
    if super_speedup <= 1.0 then 0.0
    else (super_speedup -. flat_speedup) /. (super_speedup -. 1.0)
  in
  Format.fprintf fmt
    "geomean: flat %.3fx, flat+super %.3fx (superinstruction share \
     %.1f%%)@."
    flat_speedup super_speedup (super_share *. 100.0);
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"quick\": %b,\n  \"reps\": %d,\n%s  \"benchmarks\": [\n"
       quick reps (host_json_fields ~jobs));
  List.iteri
    (fun i (name, cycles, tree_s, flat_s, super_s, fused_sites, top_pairs) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"cycles_per_iteration\": %Ld,\n\
           \     \"tree_wall_s\": %.6f, \"flat_wall_s\": %.6f, \
            \"flat_super_wall_s\": %.6f,\n\
           \     \"flat_speedup\": %.4f, \"flat_super_speedup\": %.4f,\n\
           \     \"fused_sites\": %d,\n\
           \     \"top_pairs\": [" name cycles tree_s flat_s super_s
           (tree_s /. flat_s) (tree_s /. super_s) fused_sites);
      List.iteri
        (fun j (a, b, c) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{\"first\": %S, \"second\": %S, \"count\": %d}"
               (if j > 0 then ", " else "")
               a b c))
        top_pairs;
      Buffer.add_string buf
        (Printf.sprintf "]}%s\n"
           (if i < List.length per_bench - 1 then "," else "")))
    per_bench;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"flat_speedup_geomean\": %.4f,\n\
       \  \"flat_super_speedup_geomean\": %.4f,\n\
       \  \"superinstruction_share\": %.4f\n}\n"
       flat_speedup super_speedup super_share);
  Tessera_util.Fileio.atomic_write ~path:"BENCH_flat.json" (Buffer.contents buf);
  Format.fprintf fmt "[wrote BENCH_flat.json]@.@."

(* ------------------------------------------------------------------ *)
(* Deterministic sampling profiler (BENCH_profile.json)                 *)
(* ------------------------------------------------------------------ *)

module Profile = Tessera_obs.Profile

(* Three oracles over the sampling profiler:

   - determinism: two same-seed runs must serialize to byte-identical
     canonical profiles (the virtual clock is the sampling trigger, so
     host speed cannot move a sample);
   - attribution: the flat tier and the tree walker are two independent
     interpreters charging the same virtual costs, so each one's
     hottest method must appear among the other's top three;
   - off-state cost: with the profiler off the interpreters select the
     unwrapped charge closure, so the off state must be
     indistinguishable — within the <3% observability budget, which
     here bounds pure measurement noise — from a pristine run made
     before the profiler was ever enabled in the process. *)
let run_profile ~jobs cfg =
  section "Sampling profiler: determinism, attribution, off-state cost";
  let bench =
    Suites.scale_bench
      (Option.get (Suites.find "compress"))
      cfg.Harness.Expconfig.bench_scale
  in
  let program = Tessera_workloads.Generate.program bench.Suites.profile in
  let iterations = 3 in
  let run () =
    let engine = Engine.create program in
    for it = 0 to iterations - 1 do
      for j = 0 to bench.Suites.iteration_invocations - 1 do
        ignore
          (Engine.invoke_entry engine
             [| Values.Int_v (Int64.of_int ((it * 31) + j)) |])
      done
    done;
    Engine.app_cycles engine
  in
  let time_best reps f =
    let best = ref infinity in
    for _ = 1 to reps do
      let t0 = Unix.gettimeofday () in
      ignore (f ());
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  for _ = 1 to 4 do
    ignore (run ()) (* warm host code paths and heap before timing *)
  done;
  let reps = 9 in
  let period = 4096 in
  (* the three timing legs run back to back with a normalized heap, so
     slow drift of the host (GC heap growth, frequency scaling) cannot
     masquerade as overhead: pristine (the profiler has never been
     enabled in this process), off (after an enable/disable cycle — the
     same unwrapped charge closure, so any measured difference is the
     off-state cost plus noise), then on *)
  let timed_leg f =
    Gc.major ();
    time_best reps f
  in
  let pristine_s = timed_leg run in
  Profile.enable ~period ();
  Profile.disable ();
  Profile.reset ();
  let off_s = timed_leg run in
  Profile.enable ~period ();
  let on_s = timed_leg run in
  let off_overhead_pct = (off_s -. pristine_s) /. pristine_s *. 100.0 in
  let on_overhead_pct = (on_s -. off_s) /. off_s *. 100.0 in
  (* determinism oracle: two identical runs, byte-identical profiles *)
  Profile.enable ~period ();
  let app_cycles = run () in
  let canon1 = Profile.to_canonical_string () in
  let top_flat =
    match Profile.hot_methods () with (m, _) :: _ -> m | [] -> ""
  in
  let top3_flat = List.filteri (fun i _ -> i < 3) (Profile.hot_methods ()) in
  let profile_json = Profile.to_json () in
  let total = Profile.total_samples () in
  let sites = Profile.site_count () in
  let dropped = Profile.dropped_samples () in
  Profile.report fmt;
  Profile.enable ~period ();
  ignore (run ());
  let canon2 = Profile.to_canonical_string () in
  let deterministic = String.equal canon1 canon2 in
  (* attribution cross-check on the other interpreter *)
  Tessera_flat.Cache.set_enabled false;
  Profile.enable ~period ();
  ignore (run ());
  let top_tree =
    match Profile.hot_methods () with (m, _) :: _ -> m | [] -> ""
  in
  let top3_tree = List.filteri (fun i _ -> i < 3) (Profile.hot_methods ()) in
  Tessera_flat.Cache.set_enabled true;
  let top_matches =
    List.mem_assoc top_flat top3_tree && List.mem_assoc top_tree top3_flat
  in
  Profile.disable ();
  Profile.reset ();
  let coverage =
    float_of_int total *. float_of_int period /. Int64.to_float app_cycles
  in
  Format.fprintf fmt
    "%-10s %d samples at period %d (%d sites, %d dropped); sample coverage \
     %.3f of %.2fM charged cycles@."
    bench.Suites.profile.Tessera_workloads.Profile.name total period sites
    dropped coverage
    (Int64.to_float app_cycles /. 1e6);
  Format.fprintf fmt
    "pristine %.2f ms, profiler-off %.2f ms (%+.2f%%), profiler-on %.2f ms \
     (%+.2f%% over off)@."
    (pristine_s *. 1e3) (off_s *. 1e3) off_overhead_pct (on_s *. 1e3)
    on_overhead_pct;
  Format.fprintf fmt
    "determinism: %s; hottest method flat=%s tree=%s (%s)@.@."
    (if deterministic then "byte-identical" else "DIVERGED")
    top_flat top_tree
    (if top_matches then "attribution agrees" else "ATTRIBUTION DISAGREES");
  let json =
    Printf.sprintf
      "{\n\
      \  \"benchmark\": %S,\n\
      \  \"iterations\": %d,\n\
      \  \"reps\": %d,\n\
      %s\
      \  \"period_cycles\": %d,\n\
      \  \"total_samples\": %d,\n\
      \  \"sites\": %d,\n\
      \  \"dropped\": %d,\n\
      \  \"sample_coverage\": %.4f,\n\
      \  \"pristine_wall_s\": %.6f,\n\
      \  \"profiler_off_wall_s\": %.6f,\n\
      \  \"profiler_on_wall_s\": %.6f,\n\
      \  \"profiler_off_overhead_pct\": %.4f,\n\
      \  \"profiler_on_overhead_pct\": %.4f,\n\
      \  \"deterministic\": %b,\n\
      \  \"top_method_flat\": %S,\n\
      \  \"top_method_tree\": %S,\n\
      \  \"top_method_matches\": %b,\n\
      \  \"profile\": %s}\n"
      bench.Suites.profile.Tessera_workloads.Profile.name iterations reps
      (host_json_fields ~jobs) period total sites dropped coverage pristine_s
      off_s on_s off_overhead_pct on_overhead_pct deterministic top_flat
      top_tree top_matches profile_json
  in
  Tessera_util.Fileio.atomic_write ~path:"BENCH_profile.json" json;
  Format.fprintf fmt "[wrote BENCH_profile.json]@.@.";
  let failures = ref [] in
  let check cond what = if not cond then failures := what :: !failures in
  check deterministic "same-seed profiles were not byte-identical";
  check top_matches
    "flat-tier and tree-walker hot-method attributions disagree";
  check (total > 0) "the profiled run produced no samples";
  if !failures <> [] then begin
    List.iter (Format.fprintf fmt "FAILED: %s@.") (List.rev !failures);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Concurrent serving under load (BENCH_serve.json)                     *)
(* ------------------------------------------------------------------ *)

module Serve = Tessera_protocol.Serve
module Tracectx = Tessera_protocol.Tracectx
module Conn = Tessera_protocol.Conn
module Channel = Tessera_protocol.Channel
module Message = Tessera_protocol.Message
module Injector = Tessera_faults.Injector
module Spec = Tessera_faults.Spec

type sim_role = Honest | Slow | Byzantine

(* One simulated client of the serving engine.  [rx] reuses the server's
   own Conn state machine for reply reassembly — frames are symmetric,
   and byzantine channels corrupt the response direction too. *)
type sim_client = {
  s_idx : int;
  s_role : sim_role;
  s_tx : Channel.t;
  s_rx : Conn.t;
  mutable s_sent : int;
  mutable s_preds : int;
  mutable s_sheds : int;
  mutable s_errors : int;
  mutable s_inflight : bool;
  mutable s_sent_t : float;
  mutable s_lats : float list;
  mutable s_dead : bool;
}

let pump_sim_client cl =
  if not cl.s_dead then
    List.iter
      (fun ev ->
        match ev with
        | Conn.Msg (Message.Prediction _) ->
            cl.s_preds <- cl.s_preds + 1;
            if cl.s_inflight then begin
              cl.s_inflight <- false;
              cl.s_lats <- (Unix.gettimeofday () -. cl.s_sent_t) :: cl.s_lats
            end
        | Conn.Msg Message.Overloaded ->
            cl.s_sheds <- cl.s_sheds + 1;
            cl.s_inflight <- false
        | Conn.Msg (Message.Error_msg _) ->
            cl.s_errors <- cl.s_errors + 1;
            cl.s_inflight <- false
        | Conn.Msg _ -> () (* Init_ok handshake answer *)
        | Conn.Strike _ -> ()
        | Conn.Eof -> cl.s_dead <- true)
      (Conn.pump cl.s_rx)

let sim_features i =
  Array.init Tessera_features.Features.dim (fun k ->
      float_of_int (((i * 7) + (k * 3)) mod 97))

let serve_json ~mode ~quick ~jobs ~clients ~requests ~fields =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"mode\": %S,\n  \"quick\": %b,\n  \"clients\": %d,\n\
       \  \"requests_per_client\": %d,\n"
       mode quick clients requests);
  Buffer.add_string buf (host_json_fields ~jobs);
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S: %s%s\n" k v
           (if i < List.length fields - 1 then "," else "")))
    fields;
  Buffer.add_string buf "}\n";
  Tessera_util.Fileio.atomic_write ~path:"BENCH_serve.json" (Buffer.contents buf);
  Format.fprintf fmt "[wrote BENCH_serve.json]@.@."

(* Client-side latency quantiles through the same histogram machinery
   the serving engine itself exports: observe into a finely-bucketed
   [Metrics] histogram and read it back with the exact-quantile
   accessor, instead of ad-hoc percentile math over a sorted array.
   Buckets are geometric from 1 µs to ~18 s, so the interpolation error
   stays under one bucket ratio (30%) at any scale. *)
let lat_buckets = Array.init 52 (fun i -> 1e-6 *. (1.38 ** float_of_int i))

let lat_stats lats =
  let reg = Metrics.create () in
  let h =
    Metrics.histogram reg ~buckets:lat_buckets "bench_client_latency_seconds"
  in
  List.iter (Metrics.observe h) lats;
  if Metrics.histogram_count h = 0 then (0.0, 0.0)
  else (Metrics.quantile h 0.5 *. 1e3, Metrics.quantile h 0.99 *. 1e3)

(* The in-process fleet: thousands of clients over in-memory channels,
   run in lockstep with Serve.tick so the schedule is deterministic
   enough to assert on.  The mix is ~80% honest (closed loop, window 1),
   10% slow (send and read rarely), 10% byzantine (fault-injected
   channels plus contextually-wrong frames).  A worker crash is injected
   mid-run to exercise the supervisor.  Asserts: every honest request is
   answered, overload is answered with Overloaded (not silence), the
   byzantine peers are struck out, and the final drain beats its
   deadline. *)
let run_serve ~jobs ?clients cfg =
  section "Concurrent serving: mixed fleet, backpressure, shedding, drain";
  let outcomes = get_outcomes ~jobs cfg in
  let ms = Harness.Training.train_on_all ~name:"serve" outcomes in
  let quick = cfg == Harness.Expconfig.quick in
  let n_clients =
    match clients with Some n -> n | None -> if quick then 250 else 1200
  in
  let requests = 20 in
  let rounds = if quick then 30 else 60 in
  let crash_armed = ref true in
  let calls = ref 0 in
  let make_predictor _wid =
    let real = Harness.Modelset.server_batch_predictor ms in
    fun ~level rows ->
      incr calls;
      if !crash_armed && !calls > 3 then begin
        crash_armed := false;
        failwith "injected worker crash (bench serve)"
      end;
      real ~level rows
  in
  let config =
    {
      Serve.default_config with
      Serve.max_conns = n_clients + 8;
      per_conn_queue = 4;
      queue_hwm = (if quick then 64 else 256);
      max_protocol_errors = 8;
      workers = 2;
    }
  in
  let engine = Serve.create ~config ~make_predictor () in
  let byz_spec =
    { Spec.default with Spec.corrupt = 0.25; garbage = 0.1; drop = 0.05 }
  in
  let mk_client i =
    let server_end, client_end = Channel.pipe_pair () in
    let role =
      match i mod 10 with 8 -> Slow | 9 -> Byzantine | _ -> Honest
    in
    let server_ch =
      match role with
      | Byzantine ->
          Injector.wrap_channel
            (Injector.create
               ~sleep:(fun _ -> ())
               ~spec:byz_spec
               ~seed:(Int64.of_int (1000 + i))
               ())
            server_end
      | Honest | Slow -> server_end
    in
    (match Serve.accept engine server_ch with
    | Some _ -> ()
    | None -> failwith "bench serve: accept refused below max_conns");
    Message.send client_end (Message.Init { model_name = "serve" });
    {
      s_idx = i;
      s_role = role;
      s_tx = client_end;
      s_rx = Conn.create ~id:i client_end;
      s_sent = 0;
      s_preds = 0;
      s_sheds = 0;
      s_errors = 0;
      s_inflight = false;
      s_sent_t = 0.0;
      s_lats = [];
      s_dead = false;
    }
  in
  let fleet = Array.init n_clients mk_client in
  let count role =
    Array.fold_left
      (fun n cl -> if cl.s_role = role then n + 1 else n)
      0 fleet
  in
  Format.fprintf fmt "fleet: %d clients (%d honest, %d slow, %d byzantine)@."
    n_clients (count Honest) (count Slow) (count Byzantine);
  let levels = [| Plan.Cold; Plan.Warm; Plan.Hot |] in
  let send_predict cl =
    try
      Message.send cl.s_tx
        (Message.Predict
           {
             level = levels.(cl.s_sent mod 3);
             features = sim_features cl.s_idx;
             trace =
               (if !Trace.enabled then Tracectx.fresh () else Tracectx.none);
           });
      cl.s_sent <- cl.s_sent + 1;
      cl.s_inflight <- true;
      cl.s_sent_t <- Unix.gettimeofday ()
    with Channel.Closed -> cl.s_dead <- true
  in
  let t0 = Unix.gettimeofday () in
  for round = 1 to rounds do
    Array.iter
      (fun cl ->
        if not cl.s_dead then
          match cl.s_role with
          | Honest ->
              if (not cl.s_inflight) && cl.s_sent < requests then
                send_predict cl
          | Slow ->
              if
                (not cl.s_inflight)
                && cl.s_sent < requests
                && round mod 6 = cl.s_idx mod 6
              then send_predict cl
          | Byzantine -> (
              (* no window, no manners: floods Predicts to hit the
                 per-connection bound, and every third frame is a
                 contextually-wrong Pong (a semantic strike) *)
              try
                if round mod 3 = 0 then Message.send cl.s_tx Message.Pong
                else send_predict cl
              with Channel.Closed -> cl.s_dead <- true))
      fleet;
    ignore (Serve.tick engine);
    Array.iter
      (fun cl ->
        (* slow clients read their replies rarely — they must not wedge
           anyone else *)
        if cl.s_role <> Slow || round mod 4 = 0 then pump_sim_client cl)
      fleet
  done;
  (* settle: stop offering load; every in-flight honest request must be
     answered (Prediction, Overloaded, or Error_msg — never silence) *)
  let unsettled () =
    Array.exists
      (fun cl -> cl.s_role <> Byzantine && (not cl.s_dead) && cl.s_inflight)
      fleet
  in
  let settle = ref 0 in
  while unsettled () && !settle < 500 do
    incr settle;
    ignore (Serve.tick engine);
    Array.iter pump_sim_client fleet
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let clean = Serve.finish_drain engine in
  let c = Serve.counters engine in
  Format.fprintf fmt "%a@." Serve.pp_counters c;
  let honest_lats =
    Array.fold_left
      (fun acc cl -> if cl.s_role = Honest then cl.s_lats @ acc else acc)
      [] fleet
  in
  let p50_ms, p99_ms = lat_stats honest_lats in
  let lost =
    Array.fold_left
      (fun n cl ->
        if cl.s_role <> Byzantine && (cl.s_dead || cl.s_inflight) then n + 1
        else n)
      0 fleet
  in
  let pps = float_of_int c.Serve.predictions /. Float.max 1e-9 wall in
  let burn = Serve.slo_burn_rate engine in
  Format.fprintf fmt
    "%.0f predictions/s over %.2fs; honest latency p50 %.3f ms, p99 %.3f \
     ms; settle rounds %d; slo burn rate %.3f@."
    pps wall p50_ms p99_ms !settle burn;
  let failures = ref [] in
  let check cond what = if not cond then failures := what :: !failures in
  check (lost = 0)
    (Printf.sprintf "%d honest/slow clients lost a request or their \
                     connection" lost);
  check (c.Serve.shed > 0) "overload was never exercised (no shed answers)";
  check
    (c.Serve.worker_restarts >= 1)
    "the injected worker crash did not trigger a supervisor restart";
  check (c.Serve.struck_out >= 1) "no byzantine connection was struck out";
  check clean "drain missed its deadline";
  serve_json ~mode:"in_process" ~quick ~jobs ~clients:n_clients ~requests
    ~fields:
      [
        ("honest", string_of_int (count Honest));
        ("slow", string_of_int (count Slow));
        ("byzantine", string_of_int (count Byzantine));
        ("rounds", string_of_int rounds);
        ("wall_s", Printf.sprintf "%.4f" wall);
        ("predictions", string_of_int c.Serve.predictions);
        ("predictions_per_sec", Printf.sprintf "%.1f" pps);
        ("shed", string_of_int c.Serve.shed);
        ("strikes", string_of_int c.Serve.strikes);
        ("struck_out", string_of_int c.Serve.struck_out);
        ("worker_restarts", string_of_int c.Serve.worker_restarts);
        ("dropped", string_of_int c.Serve.dropped);
        ("honest_lost", string_of_int lost);
        ("latency_p50_ms", Printf.sprintf "%.4f" p50_ms);
        ("latency_p99_ms", Printf.sprintf "%.4f" p99_ms);
        ("slo_burn_rate", Printf.sprintf "%.4f" burn);
        ("drain_clean", string_of_bool clean);
        ( "failures",
          "["
          ^ String.concat ", "
              (List.map (Printf.sprintf "%S") (List.rev !failures))
          ^ "]" );
      ];
  if !failures <> [] then begin
    List.iter (Format.fprintf fmt "FAILED: %s@.") (List.rev !failures);
    exit 1
  end;
  (* span-tree demo on a fresh engine: a handful of traced requests —
     kept out of the measured fleet above so tracing cost cannot skew
     the throughput numbers — rendered as the per-request critical-path
     table and exported as Chrome trace JSON *)
  Trace.reset ();
  Trace.enable ();
  let demo =
    Serve.create
      ~make_predictor:(fun _ -> Harness.Modelset.server_batch_predictor ms)
      ()
  in
  Trace.set_cycle_source (fun () -> Serve.vcycles demo);
  let demo_clients =
    Array.init 4 (fun i ->
        let server_end, client_end = Channel.pipe_pair () in
        (match Serve.accept demo server_end with
        | Some _ -> ()
        | None -> failwith "bench serve: demo accept refused");
        Message.send client_end (Message.Init { model_name = "serve" });
        (client_end, Conn.create ~id:i client_end))
  in
  for round = 1 to 12 do
    Array.iteri
      (fun i (tx, _) ->
        if round <= 3 then
          Message.send tx
            (Message.Predict
               {
                 level = levels.(i mod 3);
                 features = sim_features i;
                 trace = Tracectx.fresh ();
               }))
      demo_clients;
    ignore (Serve.tick demo);
    Array.iter (fun (_, rx) -> ignore (Conn.pump rx)) demo_clients
  done;
  ignore (Serve.finish_drain demo);
  let events = Trace.events () in
  Tessera_obs.Export.requests fmt events;
  Tessera_util.Fileio.atomic_write ~path:"BENCH_serve_trace.json"
    (Tessera_obs.Export.chrome_json events);
  Format.fprintf fmt "[wrote BENCH_serve_trace.json]@.@.";
  Trace.disable ();
  Trace.reset ();
  Trace.clear_cycle_source ()

(* Attach mode for the CI smoke: drive an already-running
   [tessera_server --socket PATH] with honest window-1 clients over real
   Unix sockets.  The server may be fault-injected, so lost requests are
   timed out, retried once, and reported rather than asserted away; the
   smoke's hard assertion is the server's own clean-drain exit code. *)
let run_serve_attach ~path ~clients ~requests =
  section (Printf.sprintf "Serving smoke: %d clients against %s" clients path);
  let connect i =
    let rec go tries =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR), _, _)
        when tries < 200 ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Unix.sleepf 0.05;
          go (tries + 1)
    in
    let fd = go 0 in
    let ch = Channel.of_fds fd fd in
    Message.send ch (Message.Init { model_name = "smoke" });
    {
      s_idx = i;
      s_role = Honest;
      s_tx = ch;
      s_rx = Conn.create ~id:i ch;
      s_sent = 0;
      s_preds = 0;
      s_sheds = 0;
      s_errors = 0;
      s_inflight = false;
      s_sent_t = 0.0;
      s_lats = [];
      s_dead = false;
    }
  in
  let fleet = Array.init clients connect in
  let timeouts = ref 0 in
  let deadline = Unix.gettimeofday () +. 120.0 in
  let active cl = (not cl.s_dead) && (cl.s_sent < requests || cl.s_inflight) in
  while
    Array.exists active fleet && Unix.gettimeofday () < deadline
  do
    let progressed = ref false in
    Array.iter
      (fun cl ->
        if not cl.s_dead then begin
          if (not cl.s_inflight) && cl.s_sent < requests then begin
            (try
               Message.send cl.s_tx
                 (Message.Predict
                    {
                      level = Plan.Hot;
                      features = sim_features cl.s_idx;
                      trace = Tracectx.none;
                    });
               cl.s_sent <- cl.s_sent + 1;
               cl.s_inflight <- true;
               cl.s_sent_t <- Unix.gettimeofday ()
             with Channel.Closed -> cl.s_dead <- true);
            progressed := true
          end
          else if
            cl.s_inflight && Unix.gettimeofday () -. cl.s_sent_t > 2.0
          then begin
            (* a fault-injected server may have dropped the request or
               the reply: give up on this one and move on *)
            incr timeouts;
            cl.s_inflight <- false;
            progressed := true
          end;
          let before = cl.s_preds + cl.s_sheds + cl.s_errors in
          pump_sim_client cl;
          if cl.s_preds + cl.s_sheds + cl.s_errors > before then
            progressed := true
        end)
      fleet;
    if not !progressed then Unix.sleepf 0.002
  done;
  Array.iter
    (fun cl ->
      if not cl.s_dead then begin
        (try Message.send cl.s_tx Message.Shutdown
         with Channel.Closed -> ());
        try Channel.close cl.s_tx with Channel.Closed -> ()
      end)
    fleet;
  let sum f = Array.fold_left (fun n cl -> n + f cl) 0 fleet in
  let preds = sum (fun cl -> cl.s_preds) in
  let sheds = sum (fun cl -> cl.s_sheds) in
  let errors = sum (fun cl -> cl.s_errors) in
  let dead = sum (fun cl -> if cl.s_dead then 1 else 0) in
  let lats = Array.fold_left (fun acc cl -> cl.s_lats @ acc) [] fleet in
  let p50_ms, p99_ms = lat_stats lats in
  Format.fprintf fmt
    "predictions %d, shed %d, errors %d, timeouts %d, closed %d; latency \
     p50 %.3f ms, p99 %.3f ms@."
    preds sheds errors !timeouts dead p50_ms p99_ms;
  serve_json ~mode:"socket" ~quick:false ~jobs:1 ~clients ~requests
    ~fields:
      [
        ("socket", Printf.sprintf "%S" path);
        ("predictions", string_of_int preds);
        ("shed", string_of_int sheds);
        ("errors", string_of_int errors);
        ("timeouts", string_of_int !timeouts);
        ("connections_closed_on_us", string_of_int dead);
        ("latency_p50_ms", Printf.sprintf "%.4f" p50_ms);
        ("latency_p99_ms", Printf.sprintf "%.4f" p99_ms);
      ];
  if preds = 0 then begin
    Format.fprintf fmt "FAILED: not a single prediction was answered@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let run_micro ~jobs cfg =
  section "Micro-benchmarks (Bechamel, OLS ns/op)";
  let open Bechamel in
  let outcomes = get_outcomes ~jobs cfg in
  let ms = Harness.Training.train_on_all ~name:"micro" outcomes in
  let bench0 = List.hd Suites.specjvm98 in
  let program = Tessera_workloads.Generate.program bench0.Suites.profile in
  let meth = Tessera_il.Program.meth program 1 in
  let features = Tessera_features.Features.extract meth in
  let archive = (List.hd outcomes).Harness.Collection.merged in
  let archive_bytes = Tessera_collect.Archive.to_string archive in
  let server_ch, client_ch = Tessera_protocol.Channel.pipe_pair () in
  let predictor = Harness.Modelset.server_predictor ms in
  let wire_features = Array.make Tessera_features.Features.dim 0.5 in
  let rng = Tessera_util.Prng.create 1L in
  let tests =
    [
      Test.make ~name:"model prediction (compiler query path)"
        (Staged.stage (fun () ->
             ignore (Harness.Modelset.predict ms ~level:Plan.Hot features)));
      Test.make
        ~name:
          (Printf.sprintf "feature extraction (%d dims)"
             Tessera_features.Features.dim)
        (Staged.stage (fun () ->
             ignore (Tessera_features.Features.extract meth)));
      Test.make ~name:"JIT compilation, cold plan"
        (Staged.stage (fun () ->
             ignore (Tessera_jit.Compiler.compile ~program ~level:Plan.Cold meth)));
      Test.make ~name:"archive encode"
        (Staged.stage (fun () ->
             ignore (Tessera_collect.Archive.to_string archive)));
      Test.make ~name:"archive decode"
        (Staged.stage (fun () ->
             ignore (Tessera_collect.Archive.of_string archive_bytes)));
      Test.make ~name:"protocol round-trip (in-memory)"
        (Staged.stage (fun () ->
             Tessera_protocol.Message.send client_ch
               (Tessera_protocol.Message.Predict
                  {
                    level = Plan.Hot;
                    features = wire_features;
                    trace = Tessera_protocol.Tracectx.none;
                  });
             ignore (Tessera_protocol.Server.step server_ch predictor);
             ignore (Tessera_protocol.Message.decode_from client_ch)));
      Test.make ~name:"progressive modifier generation"
        (Staged.stage (fun () ->
             ignore (Modifier.progressive rng ~i:1000 ~l:2000)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let bcfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  List.iter
    (fun test ->
      let raw = Benchmark.all bcfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ ns ] -> Format.fprintf fmt "%-44s %14.1f ns/op@." name ns
          | _ -> Format.fprintf fmt "%-44s (no estimate)@." name)
        results)
    tests;
  Format.fprintf fmt "@."

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)
(* ------------------------------------------------------------------ *)

let serve_socket = ref None
let serve_clients = ref None
let serve_requests = ref None
let lint_enabled = ref false

let () =
  (* "<subcommand>" plus optional "quick" and "-j N" modifiers, in any
     order; a bare "quick" keeps its historical meaning of "everything,
     down-scaled" *)
  let int_flag flag n =
    match int_of_string_opt n with
    | Some v when v >= 1 -> v
    | _ -> failwith (Printf.sprintf "bad %s value %S" flag n)
  in
  let rec parse (cmd, quick, jobs) = function
    | [] -> (cmd, quick, jobs)
    | "-j" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> parse (cmd, quick, j) rest
        | _ -> failwith (Printf.sprintf "bad -j value %S" n))
    | [ "-j" ] -> failwith "-j needs a domain count"
    | "--socket" :: path :: rest ->
        serve_socket := Some path;
        parse (cmd, quick, jobs) rest
    | "--clients" :: n :: rest ->
        serve_clients := Some (int_flag "--clients" n);
        parse (cmd, quick, jobs) rest
    | "--requests" :: n :: rest ->
        serve_requests := Some (int_flag "--requests" n);
        parse (cmd, quick, jobs) rest
    | "quick" :: rest -> parse (cmd, true, jobs) rest
    | "--no-flat" :: rest ->
        Tessera_flat.Cache.set_enabled false;
        parse (cmd, quick, jobs) rest
    | "--lint" :: rest ->
        (* audit every JIT pass application through the global hook; the
           verdict prints after the run (and after any digest line, so
           figure digests are unaffected) *)
        lint_enabled := true;
        Tessera_analysis.Lint.install ();
        parse (cmd, quick, jobs) rest
    | word :: rest -> parse (word, quick, jobs) rest
  in
  let cmd, quick, jobs =
    parse
      ("all", false, Pool.default_jobs ())
      (List.tl (Array.to_list Sys.argv))
  in
  let cfg =
    if quick then Harness.Expconfig.quick else Harness.Expconfig.default
  in
  let t0 = Unix.gettimeofday () in
  (match cmd with
  | "figures" -> run_figures ~jobs cfg
  | "kernels" -> run_kernels ~jobs cfg
  | "micro" -> run_micro ~jobs cfg
  | "ablations" -> run_ablations ~jobs cfg
  | "pipe" -> run_pipe_overhead ~jobs cfg
  | "crossover" -> run_crossover ~jobs cfg
  | "platform" -> run_platform ~jobs cfg
  | "cache" -> run_cache ~jobs cfg
  | "obs" -> run_obs ~jobs cfg
  | "parallel" -> run_parallel ~jobs cfg
  | "fork" -> run_fork_bench ~jobs cfg
  | "flat" -> run_flat ~jobs cfg
  | "profile" -> run_profile ~jobs cfg
  | "serve" -> (
      match !serve_socket with
      | Some path ->
          run_serve_attach ~path
            ~clients:(Option.value ~default:100 !serve_clients)
            ~requests:(Option.value ~default:20 !serve_requests)
      | None -> run_serve ~jobs ?clients:!serve_clients cfg)
  | _ ->
      run_figures ~jobs cfg;
      run_kernels ~jobs cfg;
      run_pipe_overhead ~jobs cfg;
      run_crossover ~jobs cfg;
      run_ablations ~jobs cfg;
      run_platform ~jobs cfg;
      run_cache ~jobs cfg;
      run_obs ~jobs cfg;
      run_parallel ~jobs cfg;
      run_fork_bench ~jobs cfg;
      run_flat ~jobs cfg;
      run_profile ~jobs cfg;
      run_serve ~jobs cfg;
      run_micro ~jobs cfg);
  Format.fprintf fmt "[total bench time %.1fs]@." (Unix.gettimeofday () -. t0);
  if !lint_enabled then begin
    let diags = Tessera_analysis.Lint.collected () in
    Format.fprintf fmt "[lint: %d diagnostics]@." (List.length diags);
    List.iter
      (fun d ->
        Format.fprintf fmt "DIAGNOSTIC %a@." Tessera_analysis.Lint.pp_diagnostic
          d)
      diags;
    if diags <> [] then exit 1
  end
