(* Full experiment pipeline: collection -> LOO training -> evaluation ->
   Table 4 and Figures 6-13.  The same code path as bench/main.exe, with
   CLI control over scale. *)

open Cmdliner
module Harness = Tessera_harness
module Suites = Tessera_workloads.Suites

let run quick trials spec_count dacapo_count archives =
  let base = if quick then Harness.Expconfig.quick else Harness.Expconfig.default in
  let cfg = { base with Harness.Expconfig.trials = max 1 trials } in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let spec = take spec_count Suites.specjvm98 in
  let dacapo = take dacapo_count Suites.dacapo in
  let fmt = Format.std_formatter in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    match archives with
    | Some dir when Harness.Persist.is_campaign_dir dir ->
        Format.fprintf fmt "loading archives from %s@." dir;
        Harness.Persist.load ~dir
    | _ ->
        let o = Harness.Collection.collect_training_set ~cfg () in
        Option.iter (fun dir -> Harness.Persist.save ~dir o) archives;
        o
  in
  Format.fprintf fmt "collection: %.1fs@." (Unix.gettimeofday () -. t0);
  Harness.Report.collection_summary fmt outcomes;
  let loo = Harness.Training.train_loo outcomes in
  Harness.Report.training_summary fmt loo;
  Harness.Report.table4 fmt loo;
  let t1 = Unix.gettimeofday () in
  let m = Harness.Evaluation.full_matrix ~cfg ~loo ~spec ~dacapo () in
  Format.fprintf fmt "evaluation: %.1fs@." (Unix.gettimeofday () -. t1);
  Harness.Report.figures_6_to_13 fmt m;
  0

let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Down-scaled smoke run.")

let trials =
  Arg.(value & opt int 1 & info [ "trials" ] ~docv:"N"
         ~doc:"Independent simulation runs per measurement.")

let spec_count =
  Arg.(value & opt int 8 & info [ "spec" ] ~docv:"N"
         ~doc:"Number of SPECjvm98 benchmarks to evaluate.")

let dacapo_count =
  Arg.(value & opt int 12 & info [ "dacapo" ] ~docv:"N"
         ~doc:"Number of DaCapo benchmarks to evaluate.")

let archives =
  Arg.(value & opt (some string) None & info [ "archives" ] ~docv:"DIR"
         ~doc:"Campaign directory: load collection archives from it when                present, otherwise collect and save them there.")

let paper_term =
  Term.(const run $ quick $ trials $ spec_count $ dacapo_count $ archives)

let paper_cmd =
  Cmd.v
    (Cmd.info "paper" ~doc:"Reproduce Table 4 and Figures 6-13 end to end")
    paper_term

(* [timeline BENCH]: run one benchmark under tracing and render the
   per-method compilation timeline from the captured events.  With
   --serve the model predictions are routed through the real wire
   protocol (resilient client -> in-memory pipe -> concurrent serving
   engine), so every prediction renders as a traced request with its
   queue_wait/batch_wait/predict/reply server-side breakdown. *)
let timeline target iterations model_dir serve trace_out =
  let module Engine = Tessera_jit.Engine in
  let module Trace = Tessera_obs.Trace in
  let module Export = Tessera_obs.Export in
  match Suites.find target with
  | None ->
      Printf.eprintf "unknown benchmark %S\n" target;
      1
  | Some b ->
      Trace.enable ();
      let modelset =
        Option.map (fun dir -> Harness.Modelset.load ~name:"cli" ~dir)
          model_dir
      in
      let cleanup = ref (fun () -> ()) in
      let callbacks =
        if not serve then
          match modelset with
          | None -> Engine.no_callbacks
          | Some ms ->
              {
                Engine.no_callbacks with
                Engine.choose_modifier =
                  Some (Harness.Modelset.choose_modifier ms);
              }
        else begin
          let module Serve = Tessera_protocol.Serve in
          let module Client = Tessera_protocol.Client in
          let module Channel = Tessera_protocol.Channel in
          let make_predictor _ =
            match modelset with
            | Some ms -> Harness.Modelset.server_batch_predictor ms
            | None ->
                fun ~level:_ rows ->
                  Array.map
                    (fun _ -> Tessera_modifiers.Modifier.null)
                    rows
          in
          let srv = Serve.create ~make_predictor () in
          let server_end, client_end = Tessera_protocol.Channel.pipe_pair () in
          (match Serve.accept srv server_end with
          | Some _ -> ()
          | None -> failwith "timeline --serve: accept refused");
          let client =
            Client.connect ~model_name:"timeline"
              ~lockstep:(fun () ->
                for _ = 1 to 4 do
                  ignore (Serve.tick srv)
                done)
              client_end
          in
          cleanup := (fun () -> ignore (Serve.finish_drain srv));
          let choose engine ~meth_id ~level =
            let program = Engine.program engine in
            let m = Tessera_il.Program.meth program meth_id in
            let features =
              Array.map float_of_int
                (Tessera_features.Features.to_array
                   (Tessera_features.Features.extract ~program m))
            in
            Some (Client.predict client ~level ~features)
          in
          { Engine.no_callbacks with Engine.choose_modifier = Some choose }
        end
      in
      let program = Tessera_workloads.Generate.program b.Suites.profile in
      let engine = Engine.create ~callbacks program in
      for it = 0 to iterations - 1 do
        for k = 0 to b.Suites.iteration_invocations - 1 do
          ignore
            (Engine.invoke_entry engine
               [| Tessera_vm.Values.Int_v (Int64.of_int ((it * 31) + k)) |])
        done
      done;
      !cleanup ();
      let events = Trace.events () in
      Export.timeline Format.std_formatter events;
      if
        List.exists
          (fun (e : Trace.event) -> e.Trace.cat = "serve" || e.Trace.cat = "protocol")
          events
      then Export.requests Format.std_formatter events;
      Option.iter
        (fun path ->
          Tessera_util.Fileio.atomic_write ~path (Export.chrome_json events);
          Format.printf "trace: %s (%d events)@." path (List.length events))
        trace_out;
      0

let timeline_target =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"
         ~doc:"Benchmark name (e.g. compress).")

let timeline_iterations =
  Arg.(value & opt int 1 & info [ "n"; "iterations" ] ~docv:"N"
         ~doc:"Benchmark iterations to trace.")

let timeline_model_dir =
  Arg.(value & opt (some dir) None & info [ "model" ] ~docv:"DIR"
         ~doc:"Model-set directory steering the JIT; omit for the \
               unmodified compiler.")

let timeline_serve =
  Arg.(value & flag & info [ "serve" ]
         ~doc:"Route predictions through the wire protocol (resilient \
               client, in-memory pipe, concurrent serving engine) so the \
               timeline includes per-request spans with their server-side \
               queue/batch/predict/reply breakdown.")

let timeline_trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Also write the captured events as Chrome trace_event JSON \
               (loadable in Perfetto or chrome://tracing).")

let timeline_cmd =
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Trace one benchmark run and print its per-method compilation \
             timeline (and per-request critical paths with --serve)")
    Term.(const timeline $ timeline_target $ timeline_iterations
          $ timeline_model_dir $ timeline_serve $ timeline_trace_out)

(* [profile BENCH]: run one benchmark under the deterministic sampling
   profiler and print the hot-method / hot-opcode report. *)
let profile target iterations period json_out =
  let module Engine = Tessera_jit.Engine in
  let module Profile = Tessera_obs.Profile in
  match Suites.find target with
  | None ->
      Printf.eprintf "unknown benchmark %S\n" target;
      1
  | Some b ->
      Profile.enable ~period ();
      let program = Tessera_workloads.Generate.program b.Suites.profile in
      let engine = Engine.create program in
      for it = 0 to iterations - 1 do
        for k = 0 to b.Suites.iteration_invocations - 1 do
          ignore
            (Engine.invoke_entry engine
               [| Tessera_vm.Values.Int_v (Int64.of_int ((it * 31) + k)) |])
        done
      done;
      Profile.disable ();
      Format.printf
        "%s: %d samples at period %d (%d sites, %d dropped)@.@." target
        (Profile.total_samples ()) (Profile.period ())
        (Profile.site_count ())
        (Profile.dropped_samples ());
      Profile.report Format.std_formatter;
      Option.iter
        (fun path ->
          Tessera_util.Fileio.atomic_write ~path (Profile.to_json ());
          Format.printf "profile: %s@." path)
        json_out;
      0

let profile_target =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"
         ~doc:"Benchmark name (e.g. compress).")

let profile_iterations =
  Arg.(value & opt int 1 & info [ "n"; "iterations" ] ~docv:"N"
         ~doc:"Benchmark iterations to profile.")

let profile_period =
  Arg.(value & opt int 4096 & info [ "period" ] ~docv:"CYCLES"
         ~doc:"Virtual-cycle sampling stride: one sample per CYCLES \
               charged cycles.")

let profile_json =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Also write the profile (hot methods, hot opcodes, flame \
               lines) as JSON to FILE.")

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Sample one benchmark run on the virtual clock and print the \
             hot-method and hot-opcode profile")
    Term.(const profile $ profile_target $ profile_iterations
          $ profile_period $ profile_json)

(* [regress]: compare candidate BENCH_*.json artifacts against the
   committed baselines with noise-aware thresholds; exit 1 on any
   regression. *)
let regress baseline_dir candidate_dir =
  let results =
    Harness.Regress.run ~baseline_dir ~candidate_dir ()
  in
  Harness.Regress.pp_results Format.std_formatter results;
  if Harness.Regress.failed results then 1 else 0

let regress_baseline =
  Arg.(value & opt dir "." & info [ "baseline" ] ~docv:"DIR"
         ~doc:"Directory holding the baseline BENCH_*.json artifacts \
               (default: the current directory, i.e. the committed \
               baselines).")

let regress_candidate =
  Arg.(value & opt dir "." & info [ "candidate" ] ~docv:"DIR"
         ~doc:"Directory holding the candidate BENCH_*.json artifacts of \
               the run under test.")

let regress_cmd =
  Cmd.v
    (Cmd.info "regress"
       ~doc:"Compare benchmark artifacts against committed baselines with \
             noise-aware thresholds; exit 1 on any perf regression")
    Term.(const regress $ regress_baseline $ regress_candidate)

(* [lint]: translation-validation sweep.  Every optimizer pass is
   audited over the workload corpus — each method at every opt level's
   full plan, plus every catalogue pass in isolation — and any
   diagnostic is treated as a miscompile (exit 1). *)
let lint quick spec_count dacapo_count =
  let module Program = Tessera_il.Program in
  let module Catalog = Tessera_opt.Catalog in
  let module Plan = Tessera_opt.Plan in
  let module Manager = Tessera_opt.Manager in
  let module Lint = Tessera_analysis.Lint in
  let module Profile = Tessera_workloads.Profile in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let spec_count, dacapo_count =
    if quick then (min spec_count 2, min dacapo_count 2)
    else (spec_count, dacapo_count)
  in
  let benches =
    take spec_count Suites.specjvm98 @ take dacapo_count Suites.dacapo
  in
  let applications = Array.make Catalog.count 0 in
  let diag_count = Array.make Catalog.count 0 in
  let all_diags = ref [] in
  let methods_checked = ref 0 in
  let fmt = Format.std_formatter in
  List.iter
    (fun (b : Suites.bench) ->
      let name = b.Suites.profile.Profile.name in
      let program = Tessera_workloads.Generate.program b.Suites.profile in
      let on_diagnostic (d : Lint.diagnostic) =
        diag_count.(d.Lint.pass_index) <- diag_count.(d.Lint.pass_index) + 1;
        all_diags := (name, d) :: !all_diags
      in
      let audit_base = Lint.auditor ~on_diagnostic program in
      let audit ~pass_index ~pass_name ~before ~after =
        applications.(pass_index) <- applications.(pass_index) + 1;
        audit_base ~pass_index ~pass_name ~before ~after
      in
      Array.iter
        (fun m ->
          incr methods_checked;
          Array.iter
            (fun level ->
              ignore (Manager.optimize ~audit ~program ~plan:(Plan.plan level) m))
            Plan.levels;
          Array.iter
            (fun (e : Catalog.entry) ->
              ignore
                (Manager.optimize ~audit ~program ~plan:[ e.Catalog.index ] m))
            Catalog.all)
        program.Program.methods;
      Format.fprintf fmt "%-12s %3d methods audited@." name
        (Array.length program.Program.methods))
    benches;
  Format.fprintf fmt "@.%-4s %-28s %12s %12s@." "idx" "transformation"
    "applications" "diagnostics";
  Array.iter
    (fun (e : Catalog.entry) ->
      Format.fprintf fmt "%-4d %-28s %12d %12d@." e.Catalog.index e.Catalog.name
        applications.(e.Catalog.index)
        diag_count.(e.Catalog.index))
    Catalog.all;
  let total_apps = Array.fold_left ( + ) 0 applications in
  let total_diags = List.length !all_diags in
  Format.fprintf fmt
    "@.%d benchmarks, %d methods, %d audited pass applications, %d diagnostics@."
    (List.length benches) !methods_checked total_apps total_diags;
  List.iter
    (fun (bench, d) ->
      Format.fprintf fmt "DIAGNOSTIC %s: %a@." bench Lint.pp_diagnostic d)
    (List.rev !all_diags);
  if total_diags = 0 then 0 else 1

let lint_quick =
  Arg.(value & flag & info [ "quick" ]
         ~doc:"Clamp the corpus to 2 SPECjvm98 + 2 DaCapo benchmarks.")

let lint_spec =
  Arg.(value & opt int 8 & info [ "spec" ] ~docv:"N"
         ~doc:"Number of SPECjvm98 benchmarks to audit.")

let lint_dacapo =
  Arg.(value & opt int 12 & info [ "dacapo" ] ~docv:"N"
         ~doc:"Number of DaCapo benchmarks to audit.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Audit every optimizer pass over the workload corpus with the \
             translation-validation lint; exit 1 on any diagnostic")
    Term.(const lint $ lint_quick $ lint_spec $ lint_dacapo)

let cmd =
  Cmd.group ~default:paper_term
    (Cmd.info "tessera_report"
       ~doc:"Reproduce the paper's tables and figures, or inspect a traced \
             run")
    [ paper_cmd; timeline_cmd; profile_cmd; regress_cmd; lint_cmd ]

let () = exit (Cmd.eval' cmd)
