(* Model server: answers Predict requests over named pipes (Section 7 of
   the paper).  The compiler side connects with
   [Tessera_protocol.Channel.fifo_pair]'s endpoint A semantics:
   the server reads requests from IN_FIFO and writes responses to
   OUT_FIFO.

   --fault-spec wraps the channel in a deterministic fault injector, so
   the resilience of real (separate-process) clients can be exercised:
   dropped/corrupted responses, delays, and a simulated crash. *)

open Cmdliner
module Harness = Tessera_harness
module Channel = Tessera_protocol.Channel
module Spec = Tessera_faults.Spec
module Injector = Tessera_faults.Injector
module Codecache = Tessera_cache.Codecache

(* The serving deployment owns the shared code-cache directory: verify
   it at startup (every frame is CRC-checked on open) and, unless
   read-only, compact away any damage or garbage found, so compiler
   clients warm-start from a scrubbed store. *)
let scrub_code_cache dir capacity_mb readonly =
  let c = Codecache.create ~dir ~capacity_mb ~readonly () in
  Format.printf "code cache %s: %d entries, %d bytes, %a%s@." dir
    (Codecache.entry_count c) (Codecache.byte_size c) Codecache.pp_counters
    (Codecache.counters c)
    (if readonly then " (readonly)" else "");
  Codecache.close c

let run model_dir in_fifo out_fifo fault_spec fault_seed code_cache_dir
    code_cache_mb code_cache_readonly metrics_out =
  (* a client that vanishes mid-write must surface as Channel.Closed
     (EPIPE), not kill the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Option.iter
    (fun dir -> scrub_code_cache dir code_cache_mb code_cache_readonly)
    code_cache_dir;
  let ms = Harness.Modelset.load ~name:"server" ~dir:model_dir in
  List.iter
    (fun p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      Unix.mkfifo p 0o600)
    [ in_fifo; out_fifo ];
  Printf.printf "serving %s: reading %s, writing %s\n%!" model_dir in_fifo
    out_fifo;
  (* opening blocks until the client opens the other ends *)
  let fin = Unix.openfile in_fifo [ Unix.O_RDONLY ] 0 in
  let fout = Unix.openfile out_fifo [ Unix.O_WRONLY ] 0 in
  let raw = Channel.of_fds fin fout in
  let injector =
    match fault_spec with
    | None -> None
    | Some spec ->
        let inj =
          Injector.create ~sleep:Unix.sleepf ~spec
            ~seed:(Int64.of_int fault_seed) ()
        in
        Printf.printf "injecting faults: %s (seed %d)\n%!"
          (Spec.to_string spec) fault_seed;
        Some inj
  in
  let ch =
    match injector with
    | None -> raw
    | Some inj -> Injector.wrap_channel inj raw
  in
  (try Tessera_protocol.Server.serve ch (Harness.Modelset.server_predictor ms)
   with Channel.Closed -> ());
  (* the same exposition a live client gets from a Stats_req, dumped for
     post-mortem scraping *)
  Option.iter
    (fun path ->
      Tessera_util.Fileio.atomic_write ~path
        (Tessera_obs.Metrics.expose Tessera_obs.Metrics.default))
    metrics_out;
  match injector with
  | Some inj when (Injector.stats inj).Injector.crashes > 0 ->
      Format.printf "simulated crash: %a@." Injector.pp_stats
        (Injector.stats inj);
      1
  | Some inj ->
      Format.printf "shutdown: %a@." Injector.pp_stats (Injector.stats inj);
      0
  | None ->
      Printf.printf "shutdown\n";
      0

let model_dir =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"MODEL_DIR"
         ~doc:"Model-set directory (from tessera_train).")

let in_fifo =
  Arg.(value & opt string "/tmp/tessera.req" & info [ "in" ] ~docv:"FIFO"
         ~doc:"Request pipe (created).")

let out_fifo =
  Arg.(value & opt string "/tmp/tessera.res" & info [ "out" ] ~docv:"FIFO"
         ~doc:"Response pipe (created).")

let spec_conv =
  Arg.conv
    ( (fun s ->
        match Spec.parse s with Ok v -> Ok v | Error e -> Error (`Msg e)),
      fun fmt s -> Format.pp_print_string fmt (Spec.to_string s) )

let fault_spec =
  Arg.(value & opt (some spec_conv) None & info [ "fault-spec" ] ~docv:"SPEC"
         ~doc:"Inject faults into the served channel, e.g. \
               drop:0.02,corrupt:0.01,crash_after:500.")

let fault_seed =
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"PRNG seed of the fault injector.")

let code_cache_dir =
  Arg.(value & opt (some string) None & info [ "code-cache" ] ~docv:"DIR"
         ~doc:"Verify (and unless read-only, compact) the shared \
               compiled-code cache at startup before serving.")

let code_cache_mb =
  Arg.(value & opt int 64 & info [ "code-cache-mb" ] ~docv:"MB"
         ~doc:"Capacity enforced while scrubbing the code cache.")

let code_cache_readonly =
  Arg.(value & flag & info [ "code-cache-readonly" ]
         ~doc:"Verify the code cache without rewriting it.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the server's Prometheus metrics exposition to FILE at \
               shutdown (the same text a client receives for a stats \
               request).")

let cmd =
  Cmd.v
    (Cmd.info "tessera_server"
       ~doc:"Serve a trained model set over named pipes")
    Term.(const run $ model_dir $ in_fifo $ out_fifo $ fault_spec $ fault_seed
          $ code_cache_dir $ code_cache_mb $ code_cache_readonly $ metrics_out)

let () = exit (Cmd.eval' cmd)
