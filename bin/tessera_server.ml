(* Model server: answers Predict requests (Section 7 of the paper).

   Two deployment shapes:

   - named pipes (default, the paper's setup): one blocking client over
     IN_FIFO/OUT_FIFO via [Tessera_protocol.Server] — kept for the
     two-process compiler integration and the pipe-overhead benchmark;

   - --socket PATH: a concurrent multi-client service over a Unix
     domain socket via [Tessera_protocol.Serve] — a select loop
     multiplexing every connection, bounded queues with backpressure,
     load-shedding (Overloaded) past the high-water mark, per-connection
     error budgets, batched SVM prediction, supervised prediction
     workers, and a deadline-bounded graceful drain on SIGTERM/SIGINT.

   --fault-spec wraps the served channel(s) in deterministic fault
   injectors (per-connection in socket mode), so the resilience of real
   clients can be exercised: dropped/corrupted responses, delays, and a
   simulated crash. *)

open Cmdliner
module Harness = Tessera_harness
module Channel = Tessera_protocol.Channel
module Server = Tessera_protocol.Server
module Serve = Tessera_protocol.Serve
module Spec = Tessera_faults.Spec
module Injector = Tessera_faults.Injector
module Codecache = Tessera_cache.Codecache

(* The serving deployment owns the shared code-cache directory: verify
   it at startup (every frame is CRC-checked on open) and, unless
   read-only, compact away any damage or garbage found, so compiler
   clients warm-start from a scrubbed store. *)
let scrub_code_cache dir capacity_mb readonly =
  let c = Codecache.create ~dir ~capacity_mb ~readonly () in
  Format.printf "code cache %s: %d entries, %d bytes, %a%s@." dir
    (Codecache.entry_count c) (Codecache.byte_size c) Codecache.pp_counters
    (Codecache.counters c)
    (if readonly then " (readonly)" else "");
  Codecache.close c

let dump_metrics metrics_out =
  (* the same exposition a live client gets from a Stats_req, dumped for
     post-mortem scraping *)
  Option.iter
    (fun path ->
      Tessera_util.Fileio.atomic_write ~path
        (Tessera_obs.Metrics.expose Tessera_obs.Metrics.default))
    metrics_out

(* ---------------- FIFO mode: one blocking client ------------------- *)

let run_fifo ms in_fifo out_fifo fault_spec fault_seed resync_budget
    max_protocol_errors metrics_out =
  List.iter
    (fun p ->
      (try Unix.unlink p with Unix.Unix_error _ -> ());
      Unix.mkfifo p 0o600)
    [ in_fifo; out_fifo ];
  Printf.printf "serving: reading %s, writing %s\n%!" in_fifo out_fifo;
  (* opening blocks until the client opens the other ends *)
  let fin = Unix.openfile in_fifo [ Unix.O_RDONLY ] 0 in
  let fout = Unix.openfile out_fifo [ Unix.O_WRONLY ] 0 in
  let raw = Channel.of_fds fin fout in
  let injector =
    match fault_spec with
    | None -> None
    | Some spec ->
        let inj =
          Injector.create ~sleep:Unix.sleepf ~spec
            ~seed:(Int64.of_int fault_seed) ()
        in
        Printf.printf "injecting faults: %s (seed %d)\n%!"
          (Spec.to_string spec) fault_seed;
        Some inj
  in
  let ch =
    match injector with
    | None -> raw
    | Some inj -> Injector.wrap_channel inj raw
  in
  let session = Server.session ~resync_budget ~max_protocol_errors () in
  (try
     Server.serve ~session ch (Harness.Modelset.server_predictor ms)
   with Channel.Closed -> ());
  dump_metrics metrics_out;
  match injector with
  | Some inj when (Injector.stats inj).Injector.crashes > 0 ->
      Format.printf "simulated crash: %a@." Injector.pp_stats
        (Injector.stats inj);
      1
  | Some inj ->
      Format.printf "shutdown: %a@." Injector.pp_stats (Injector.stats inj);
      0
  | None ->
      Printf.printf "shutdown\n";
      0

(* ---------------- socket mode: many concurrent clients ------------- *)

let run_socket ms path fault_spec fault_seed resync_budget
    max_protocol_errors max_conns per_conn_queue queue_hwm workers
    drain_deadline slo_objective slo_target metrics_out =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen (Unix.ADDR_UNIX path);
  Unix.listen listen 128;
  let stop = ref false in
  let on_signal _ = stop := true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  let config =
    {
      Serve.default_config with
      Serve.resync_budget;
      max_protocol_errors;
      max_conns;
      per_conn_queue;
      queue_hwm;
      workers;
      drain_deadline_s = drain_deadline;
      slo_objective_s = slo_objective;
      slo_target;
    }
  in
  let engine =
    Serve.create ~config
      ~make_predictor:(fun _ -> Harness.Modelset.server_batch_predictor ms)
      ()
  in
  (* request spans are stamped on the serving engine's virtual clock;
     register it so any other events this process emits share the axis *)
  Tessera_obs.Trace.set_cycle_source (fun () -> Serve.vcycles engine);
  (* each accepted connection gets its own deterministic injector, so a
     faulty client's stream is independent of its neighbours' *)
  let conn_count = ref 0 in
  let wrap ch =
    incr conn_count;
    match fault_spec with
    | None -> ch
    | Some spec ->
        let inj =
          Injector.create ~sleep:Unix.sleepf ~spec
            ~seed:(Int64.of_int (fault_seed + !conn_count)) ()
        in
        Injector.wrap_channel inj ch
  in
  Printf.printf "serving on %s (%d workers, hwm %d, error cap %d)\n%!" path
    workers queue_hwm max_protocol_errors;
  Option.iter
    (fun spec ->
      Printf.printf "injecting faults per connection: %s (base seed %d)\n%!"
        (Spec.to_string spec) fault_seed)
    fault_spec;
  let clean = Serve.serve_fds engine ~listen ~wrap ~stop:(fun () -> !stop) in
  (try Unix.close listen with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  dump_metrics metrics_out;
  Format.printf "drain %s: %a@."
    (if clean then "complete" else "DEADLINE EXCEEDED")
    Serve.pp_counters (Serve.counters engine);
  Format.printf "slo: objective %.4fs target %.3f, final burn rate %.3f@."
    slo_objective slo_target
    (Serve.slo_burn_rate engine);
  if clean then 0 else 1

let run model_dir in_fifo out_fifo socket fault_spec fault_seed code_cache_dir
    code_cache_mb code_cache_readonly resync_budget max_protocol_errors
    max_conns per_conn_queue queue_hwm workers drain_deadline slo_objective
    slo_target metrics_out no_flat =
  if no_flat then Tessera_flat.Cache.set_enabled false;
  (* a client that vanishes mid-write must surface as Channel.Closed
     (EPIPE), not kill the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Option.iter
    (fun dir -> scrub_code_cache dir code_cache_mb code_cache_readonly)
    code_cache_dir;
  let ms = Harness.Modelset.load ~name:"server" ~dir:model_dir in
  match socket with
  | Some path ->
      run_socket ms path fault_spec fault_seed resync_budget
        max_protocol_errors max_conns per_conn_queue queue_hwm workers
        drain_deadline slo_objective slo_target metrics_out
  | None ->
      run_fifo ms in_fifo out_fifo fault_spec fault_seed resync_budget
        max_protocol_errors metrics_out

let model_dir =
  Arg.(required & pos 0 (some dir) None & info [] ~docv:"MODEL_DIR"
         ~doc:"Model-set directory (from tessera_train).")

let in_fifo =
  Arg.(value & opt string "/tmp/tessera.req" & info [ "in" ] ~docv:"FIFO"
         ~doc:"Request pipe (created; FIFO mode only).")

let out_fifo =
  Arg.(value & opt string "/tmp/tessera.res" & info [ "out" ] ~docv:"FIFO"
         ~doc:"Response pipe (created; FIFO mode only).")

let socket =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Serve many concurrent clients over a Unix domain socket at \
               PATH instead of one blocking client over FIFOs.  SIGTERM \
               drains gracefully: accepting stops, queued requests are \
               answered, then connections close (exit 0 if the flush beat \
               --drain-deadline).")

let spec_conv =
  Arg.conv
    ( (fun s ->
        match Spec.parse s with Ok v -> Ok v | Error e -> Error (`Msg e)),
      fun fmt s -> Format.pp_print_string fmt (Spec.to_string s) )

let fault_spec =
  Arg.(value & opt (some spec_conv) None & info [ "fault-spec" ] ~docv:"SPEC"
         ~doc:"Inject faults into the served channel(s), e.g. \
               drop:0.02,corrupt:0.01,crash_after:500.  In socket mode each \
               connection gets an independent injector.")

let fault_seed =
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"PRNG seed of the fault injector (socket mode: base seed; \
               connection k uses seed N+k).")

let code_cache_dir =
  Arg.(value & opt (some string) None & info [ "code-cache" ] ~docv:"DIR"
         ~doc:"Verify (and unless read-only, compact) the shared \
               compiled-code cache at startup before serving.")

let code_cache_mb =
  Arg.(value & opt int 64 & info [ "code-cache-mb" ] ~docv:"MB"
         ~doc:"Capacity enforced while scrubbing the code cache.")

let code_cache_readonly =
  Arg.(value & flag & info [ "code-cache-readonly" ]
         ~doc:"Verify the code cache without rewriting it.")

let resync_budget =
  Arg.(value & opt int 4096 & info [ "resync-budget" ] ~docv:"BYTES"
         ~doc:"Bytes scanned for the next frame magic after malformed input \
               before a connection is declared unsalvageable and closed.")

let max_protocol_errors =
  Arg.(value & opt int 16 & info [ "max-protocol-errors" ] ~docv:"N"
         ~doc:"Protocol errors (malformed frames, unexpected messages) a \
               connection may accumulate before it is closed.")

let max_conns =
  Arg.(value & opt int 4096 & info [ "max-conns" ] ~docv:"N"
         ~doc:"Connection cap; accepts past it are answered Overloaded and \
               closed (socket mode).")

let per_conn_queue =
  Arg.(value & opt int 8 & info [ "per-conn-queue" ] ~docv:"N"
         ~doc:"Per-connection queued-request bound; a connection at its \
               bound is not read until replies drain (backpressure).")

let queue_hwm =
  Arg.(value & opt int 1024 & info [ "queue-hwm" ] ~docv:"N"
         ~doc:"Global queue high-water mark; Predict requests above it are \
               answered Overloaded (load shedding).")

let workers =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
         ~doc:"Supervised prediction workers; a crashed worker is restarted \
               without dropping connections (socket mode).")

let drain_deadline =
  Arg.(value & opt float 5.0 & info [ "drain-deadline" ] ~docv:"SECONDS"
         ~doc:"Bound on the graceful drain after SIGTERM (socket mode).")

let slo_objective =
  Arg.(value & opt float 0.01 & info [ "slo-objective" ] ~docv:"SECONDS"
         ~doc:"Latency objective of the serving SLO: a request answered \
               slower than this counts against the error budget (socket \
               mode).")

let slo_target =
  Arg.(value & opt float 0.99 & info [ "slo-target" ] ~docv:"FRACTION"
         ~doc:"Fraction of requests that must meet --slo-objective; the \
               rolling burn rate (error fraction over budget) is exported \
               as the serve_slo_burn_rate gauge and via stats requests.")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write the server's Prometheus metrics exposition to FILE at \
               shutdown (the same text a client receives for a stats \
               request).")

let no_flat =
  Arg.(value & flag & info [ "no-flat" ]
         ~doc:"Disable the flat bytecode execution tier for any method \
               execution this process performs (identical results and \
               cycles; the flat tier only changes host time).")

let cmd =
  Cmd.v
    (Cmd.info "tessera_server"
       ~doc:"Serve a trained model set over named pipes or a Unix socket")
    Term.(const run $ model_dir $ in_fifo $ out_fifo $ socket $ fault_spec
          $ fault_seed $ code_cache_dir $ code_cache_mb $ code_cache_readonly
          $ resync_budget $ max_protocol_errors $ max_conns $ per_conn_queue
          $ queue_hwm $ workers $ drain_deadline $ slo_objective $ slo_target
          $ metrics_out $ no_flat)

let () = exit (Cmd.eval' cmd)
