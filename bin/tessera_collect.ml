(* Data-collection CLI: runs a benchmark under the instrumented engine
   with modifier exploration and writes the binary archive(s). *)

open Cmdliner
module Suites = Tessera_workloads.Suites
module Harness = Tessera_harness

let run benchmarks out_dir quick fork jobs =
  let cfg =
    if quick then Harness.Expconfig.quick else Harness.Expconfig.default
  in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let benches =
    match benchmarks with
    | [] -> Suites.training_set
    | names ->
        List.map
          (fun n ->
            match Suites.find n with
            | Some b -> b
            | None -> failwith (Printf.sprintf "unknown benchmark %S" n))
          names
  in
  (* collection runs on the pool; the archives come back in input order
     and are written (and reported) from this domain only.  In fork mode
     the pool instead parallelizes each collection's branch fan-out, so
     benchmarks run one after another. *)
  let outcomes =
    if fork then
      List.map (Harness.Collection.collect_bench ~cfg ~fork ~fork_jobs:jobs)
        benches
    else
      Tessera_util.Pool.run_list ~jobs
        (Harness.Collection.collect_bench ~cfg) benches
  in
  List.iter2
    (fun bench o ->
      let name =
        bench.Suites.profile.Tessera_workloads.Profile.name
      in
      let path suffix = Filename.concat out_dir (name ^ suffix ^ ".tsra") in
      Tessera_collect.Archive.save o.Harness.Collection.randomized (path ".rand");
      Tessera_collect.Archive.save o.Harness.Collection.progressive (path ".prog");
      Tessera_collect.Archive.save o.Harness.Collection.merged (path "");
      Printf.printf "%-12s: %5d records -> %s\n%!" name
        (List.length o.Harness.Collection.merged.Tessera_collect.Archive.records)
        (path ""))
    benches outcomes;
  0

let benchmarks =
  Arg.(value & pos_all string [] & info [] ~docv:"BENCHMARK"
         ~doc:"Benchmarks to collect (default: the five trainable SPECjvm98 \
               benchmarks).")

let out_dir =
  Arg.(value & opt string "archives" & info [ "o"; "output" ] ~docv:"DIR"
         ~doc:"Directory for the .tsra archives.")

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Down-scaled collection for smoke runs.")

let fork =
  Arg.(value & flag
       & info [ "fork" ]
           ~doc:"Use the compilation-forking collector: one warm trunk run \
                 per search, with every candidate modifier measured from a \
                 snapshot at each compile decision.  $(b,-j) then \
                 parallelizes the branch fan-out instead of the benchmark \
                 list.")

let jobs =
  Arg.(value & opt int (Tessera_util.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Collect benchmarks on N domains (default: the core count; \
                 every search is independently seeded, so the archives are \
                 identical for every N).")

let cmd =
  Cmd.v
    (Cmd.info "tessera_collect"
       ~doc:"Run compilation-plan data collection on synthetic benchmarks")
    Term.(const run $ benchmarks $ out_dir $ quick $ fork $ jobs)

let () = exit (Cmd.eval' cmd)
