(* Training CLI: archives -> ranked LIBLINEAR datasets -> SVM models. *)

open Cmdliner
module Harness = Tessera_harness
module Archive = Tessera_collect.Archive
module Plan = Tessera_opt.Plan

let run archives out_dir solver_name emit_datasets explain jobs =
  let solver =
    match solver_name with
    | "ovr" -> Harness.Modelset.Ovr
    | "cs" -> Harness.Modelset.Crammer_singer
    | other -> failwith (Printf.sprintf "unknown solver %S (use ovr or cs)" other)
  in
  if archives = [] then failwith "no archives given";
  let records =
    List.concat_map (fun path -> (Archive.load path).Archive.records) archives
  in
  Printf.printf "loaded %d records from %d archives\n%!" (List.length records)
    (List.length archives);
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  if emit_datasets then
    List.iter
      (fun level ->
        let ts = Tessera_dataproc.Trainset.build ~level records in
        let path =
          Filename.concat out_dir
            (Printf.sprintf "dataset_%s.liblinear" (Plan.level_name level))
        in
        Tessera_dataproc.Liblinear_format.save ts.Tessera_dataproc.Trainset.instances path;
        Printf.printf "wrote %s (%d instances)\n%!" path
          (List.length ts.Tessera_dataproc.Trainset.instances))
      [ Plan.Cold; Plan.Warm; Plan.Hot ];
  let ms = Harness.Modelset.train ~solver ~jobs ~name:"cli" records in
  Harness.Modelset.save ms ~dir:out_dir;
  if explain then
    List.iter
      (fun (lm : Harness.Modelset.level_model) ->
        Printf.printf "--- %s model, strongest feature weights ---\n"
          (Plan.level_name lm.Harness.Modelset.level);
        Tessera_svm.Explain.report
          ~feature_name:Tessera_features.Features.component_name
          Format.std_formatter lm.Harness.Modelset.model;
        Format.pp_print_flush Format.std_formatter ())
      ms.Harness.Modelset.levels;
  List.iter
    (fun (lm : Harness.Modelset.level_model) ->
      Printf.printf "%s: %d classes, %d instances, trained in %.2fs\n%!"
        (Plan.level_name lm.Harness.Modelset.level)
        (Tessera_dataproc.Labels.size lm.Harness.Modelset.labels)
        lm.Harness.Modelset.stats.Tessera_dataproc.Trainset.training_instances
        lm.Harness.Modelset.train_seconds)
    ms.Harness.Modelset.levels;
  Printf.printf "model files written to %s\n" out_dir;
  0

let archives =
  Arg.(value & pos_all file [] & info [] ~docv:"ARCHIVE" ~doc:"Input .tsra archives.")

let out_dir =
  Arg.(value & opt string "models" & info [ "o"; "output" ] ~docv:"DIR"
         ~doc:"Directory for model/scaling/labels files.")

let solver =
  Arg.(value & opt string "cs" & info [ "solver" ] ~docv:"SOLVER"
         ~doc:"SVM solver: cs (Crammer-Singer, the paper's) or ovr \
               (one-vs-rest dual coordinate descent).")

let emit_datasets =
  Arg.(value & flag & info [ "datasets" ]
         ~doc:"Also write the intermediate LIBLINEAR text datasets.")

let explain =
  Arg.(value & flag & info [ "explain" ]
         ~doc:"Print the strongest feature weights per class of each model.")

let jobs =
  Arg.(value & opt int (Tessera_util.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Train the per-level models on N domains (default: the core \
                 count; the solvers are deterministic, so the model files \
                 are identical for every N).")

let cmd =
  Cmd.v
    (Cmd.info "tessera_train" ~doc:"Train per-level SVM models from archives")
    Term.(const run $ archives $ out_dir $ solver $ emit_datasets $ explain
          $ jobs)

let () = exit (Cmd.eval' cmd)
