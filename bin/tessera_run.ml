(* Run a benchmark (or a .tir program) on the simulated JVM, optionally
   with a learned model set steering the JIT, and print the metrics.

   With --fault-spec the model is consulted over the real wire protocol
   (an in-memory pipe pair) through the resilient client, with a
   deterministic fault injector perturbing both directions — the
   permanent regression harness for the failure model. *)

open Cmdliner
module Harness = Tessera_harness
module Suites = Tessera_workloads.Suites
module Engine = Tessera_jit.Engine
module Values = Tessera_vm.Values
module Channel = Tessera_protocol.Channel
module Server = Tessera_protocol.Server
module Client = Tessera_protocol.Client
module Spec = Tessera_faults.Spec
module Injector = Tessera_faults.Injector
module Features = Tessera_features.Features
module Program = Tessera_il.Program
module Modifier = Tessera_modifiers.Modifier
module Codecache = Tessera_cache.Codecache
module Trace = Tessera_obs.Trace
module Profile = Tessera_obs.Profile
module Metrics = Tessera_obs.Metrics
module Export = Tessera_obs.Export
module Fileio = Tessera_util.Fileio

(* In-process deployment of the paper's two-process setup: engine →
   resilient client → faulty in-memory pipes → protocol server →
   predictor, advanced in lockstep. *)
let faulty_pipeline ~spec ~seed ~predictor =
  let server_raw, client_raw = Channel.pipe_pair () in
  let server_inj = Injector.create ~spec ~seed () in
  let client_inj =
    Injector.create ~spec:(Spec.no_crash spec) ~seed:(Int64.add seed 1L) ()
  in
  let jit_inj = Injector.create ~spec ~seed:(Int64.add seed 2L) () in
  let server_ch = Injector.wrap_channel server_inj server_raw in
  let client_ch = Injector.wrap_channel client_inj client_raw in
  let lockstep () =
    try ignore (Server.step server_ch predictor)
    with Channel.Closed | Channel.Timeout -> ()
  in
  let client = Client.connect ~model_name:"faulty" ~lockstep client_ch in
  (client, server_inj, client_inj, jit_inj)

let run_target ~fmt ~model_dir ~iterations ~tir ~fault_spec ~fault_seed
    ~compile_budget ~code_cache_dir ~code_cache_mb ~code_cache_readonly
    ~trace_out ~metrics_out ~profile_out target =
  let program =
    if tir then Tessera_lang.Parser.load_program target
    else
      match Suites.find target with
      | Some b ->
          Tessera_workloads.Generate.program b.Suites.profile
      | None -> failwith (Printf.sprintf "unknown benchmark %S" target)
  in
  let iteration_invocations =
    if tir then 1
    else
      match Suites.find target with
      | Some b -> b.Suites.iteration_invocations
      | None -> 1
  in
  let spec = fault_spec in
  let modelset =
    Option.map (fun dir -> Harness.Modelset.load ~name:"cli" ~dir) model_dir
  in
  let callbacks, report_faults =
    match spec with
    | None ->
        let callbacks =
          match modelset with
          | None -> Engine.no_callbacks
          | Some ms ->
              {
                Engine.no_callbacks with
                Engine.choose_modifier =
                  Some (Harness.Modelset.choose_modifier ms);
              }
        in
        (callbacks, fun _engine -> ())
    | Some spec ->
        let predictor =
          match modelset with
          | Some ms -> Harness.Modelset.server_predictor ms
          | None -> fun ~level:_ ~features:_ -> Modifier.null
        in
        let seed = Int64.of_int fault_seed in
        let client, server_inj, client_inj, jit_inj =
          faulty_pipeline ~spec ~seed ~predictor
        in
        let choose engine ~meth_id ~level =
          let program = Engine.program engine in
          let m = Program.meth program meth_id in
          let features =
            Array.map float_of_int
              (Features.to_array (Features.extract ~program m))
          in
          Some (Client.predict client ~level ~features)
        in
        let pre_compile =
          if spec.Spec.compile_fail > 0.0 then
            Some (fun _ ~meth_id ~level:_ -> Injector.compile_fault jit_inj ~meth_id)
          else None
        in
        let callbacks =
          {
            Engine.no_callbacks with
            Engine.choose_modifier = Some choose;
            pre_compile;
          }
        in
        let report engine =
          Format.fprintf fmt "fault spec         : %s (seed %d)\n"
            (Spec.to_string spec) fault_seed;
          Format.fprintf fmt "  server injector  : %a@." Injector.pp_stats
            (Injector.stats server_inj);
          Format.fprintf fmt "  client injector  : %a@." Injector.pp_stats
            (Injector.stats client_inj);
          Format.fprintf fmt "  client counters  : %a@." Client.pp_counters
            (Client.counters client);
          Format.fprintf fmt "  breaker state    : %s\n"
            (Client.breaker_name (Client.breaker_state client));
          Format.fprintf fmt
            "  jit degradation  : compile_failures=%d budget_rejections=%d \
             degraded=%d quarantined=%d modifier_fallbacks=%d\n"
            (Engine.compile_failures engine)
            (Engine.budget_rejections engine)
            (Engine.degraded_compiles engine)
            (Engine.quarantined_methods engine)
            (Engine.modifier_fallbacks engine)
        in
        (callbacks, report)
  in
  let cache =
    Option.map
      (fun dir ->
        Codecache.create ~dir ~capacity_mb:code_cache_mb
          ~readonly:code_cache_readonly ())
      code_cache_dir
  in
  let config =
    {
      Engine.default_config with
      Engine.compile_cycle_budget = compile_budget;
      code_cache = cache;
    }
  in
  let engine = Engine.create ~config ~callbacks program in
  let traps = ref 0 in
  for it = 0 to iterations - 1 do
    for k = 0 to iteration_invocations - 1 do
      match
        Engine.invoke_entry engine
          [| Values.Int_v (Int64.of_int ((it * 31) + k)) |]
      with
      | Ok _ -> ()
      | Error _ -> incr traps
    done
  done;
  Format.fprintf fmt "application cycles : %Ld (%.2f virtual ms)\n"
    (Engine.app_cycles engine)
    (Int64.to_float (Engine.app_cycles engine)
    /. float_of_int Tessera_vm.Cost.cycles_per_ms);
  Format.fprintf fmt "compilation cycles : %Ld\n" (Engine.total_compile_cycles engine);
  Format.fprintf fmt "compilations       : %d (%d methods)\n"
    (Engine.compile_count engine)
    (Engine.methods_compiled engine);
  List.iter
    (fun (level, count) ->
      Format.fprintf fmt "  %-10s %d\n" (Tessera_opt.Plan.level_name level) count)
    (Engine.compiles_by_level engine);
  (match cache with
  | Some c ->
      Format.fprintf fmt "aot cache loads    : %d\n" (Engine.cache_hits engine);
      Format.fprintf fmt "code cache         : %a (%d entries, %d bytes%s)@."
        Codecache.pp_counters (Codecache.counters c) (Codecache.entry_count c)
        (Codecache.byte_size c)
        (if Codecache.readonly c then ", readonly" else "");
      Codecache.close c
  | None -> ());
  report_faults engine;
  if !traps > 0 then Format.fprintf fmt "uncaught exceptions: %d\n" !traps;
  (match trace_out with
  | Some path ->
      Fileio.atomic_write ~path (Export.chrome_json (Trace.events ()));
      Format.fprintf fmt "trace              : %s (%d events, %d dropped)\n" path
        (Trace.length ()) (Trace.dropped ())
  | None -> ());
  (match profile_out with
  | Some path ->
      Fileio.atomic_write ~path (Profile.to_json ());
      Format.fprintf fmt
        "profile            : %s (%d samples, %d sites, %d dropped, period \
         %d)\n"
        path (Profile.total_samples ()) (Profile.site_count ())
        (Profile.dropped_samples ()) (Profile.period ());
      Profile.report fmt
  | None -> ());
  (match metrics_out with
  | Some path ->
      (* engine registry first, then the process-wide default registry
         (model-server counters live there when the protocol is used) *)
      let text =
        Metrics.expose (Engine.metrics engine) ^ Metrics.expose Metrics.default
      in
      Fileio.atomic_write ~path text;
      Format.fprintf fmt "metrics            : %s\n" path
  | None -> ())

let run targets jobs model_dir iterations tir fault_spec fault_seed
    compile_budget code_cache_dir code_cache_mb code_cache_readonly trace_out
    metrics_out profile_out no_flat =
  if no_flat then Tessera_flat.Cache.set_enabled false;
  (* tracing must be live before the engine exists: Engine.create emits
     nothing itself, but it registers its clock as the trace cycle
     source, and the very first invocation already compiles *)
  if trace_out <> None then Trace.enable ();
  (* same for the sampling profiler: the first invocation already charges
     cycles through the interpreter's profiled charge closure *)
  if profile_out <> None then Profile.enable ();
  let multi = List.length targets > 1 in
  let jobs =
    (* the code-cache store and the trace/metrics/profile output files
       are shared across targets, so concurrent targets would race on
       them (and the profiler's credit counter is single-domain) *)
    if
      multi && jobs <> 1
      && (code_cache_dir <> None || trace_out <> None || metrics_out <> None
         || profile_out <> None)
    then begin
      prerr_endline
        "tessera_run: --code-cache/--trace-out/--metrics-out/--profile-out \
         are shared across targets; forcing -j 1";
      1
    end
    else jobs
  in
  (* each target renders its report into its own buffer, so -j N output
     is printed whole, in command-line order, never interleaved *)
  let reports =
    Tessera_util.Pool.run_list ~jobs
      (fun target ->
        let buf = Buffer.create 1024 in
        let fmt = Format.formatter_of_buffer buf in
        if multi then Format.fprintf fmt "=== %s ===@." target;
        run_target ~fmt ~model_dir ~iterations ~tir ~fault_spec ~fault_seed
          ~compile_budget ~code_cache_dir ~code_cache_mb ~code_cache_readonly
          ~trace_out ~metrics_out ~profile_out target;
        Format.pp_print_flush fmt ();
        Buffer.contents buf)
      targets
  in
  List.iter print_string reports;
  0

let targets =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"TARGET"
         ~doc:"Benchmark name(s) (e.g. compress) or path(s) to .tir files \
               with --tir; several targets run on a domain pool (see -j).")

let jobs =
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Run multiple targets on N domains (default 1; results are \
               identical for every N, printed in command-line order).")

let model_dir =
  Arg.(value & opt (some dir) None & info [ "model" ] ~docv:"DIR"
         ~doc:"Model-set directory (from tessera_train); omit for the \
               unmodified compiler.")

let iterations =
  Arg.(value & opt int 1 & info [ "n"; "iterations" ] ~docv:"N"
         ~doc:"Benchmark iterations (1 = start-up run, 10 = throughput run).")

let tir =
  Arg.(value & flag & info [ "tir" ] ~doc:"Treat TARGET as a .tir program file.")

let spec_conv =
  Arg.conv
    ( (fun s ->
        match Spec.parse s with Ok v -> Ok v | Error e -> Error (`Msg e)),
      fun fmt s -> Format.pp_print_string fmt (Spec.to_string s) )

let fault_spec =
  Arg.(value & opt (some spec_conv) None & info [ "fault-spec" ] ~docv:"SPEC"
         ~doc:"Route predictions through the wire protocol with injected \
               faults, e.g. drop:0.01,corrupt:0.005,crash_after:200. See \
               tessera.faults for the full syntax.")

let fault_seed =
  Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"N"
         ~doc:"PRNG seed of the fault injectors.")

let compile_budget =
  Arg.(value & opt (some int) None & info [ "compile-budget" ] ~docv:"CYCLES"
         ~doc:"Per-compilation cycle budget; compilations over budget are \
               degraded to lower plan levels (and ultimately the \
               interpreter).")

let code_cache_dir =
  Arg.(value & opt (some string) None & info [ "code-cache" ] ~docv:"DIR"
         ~doc:"Persistent compiled-code cache directory (created if \
               missing): compilations are looked up before compiling and \
               written back after, so a second run of the same workload \
               warm-starts with AOT loads instead of JIT compilations.")

let code_cache_mb =
  Arg.(value & opt int 64 & info [ "code-cache-mb" ] ~docv:"MB"
         ~doc:"Code-cache capacity; least-recently-used entries are \
               evicted beyond it.")

let code_cache_readonly =
  Arg.(value & flag & info [ "code-cache-readonly" ]
         ~doc:"Consume the code cache without writing back (shared or \
               immutable cache deployments).")

let trace_out =
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE"
         ~doc:"Record a virtual-clock trace of the run and write it as \
               Chrome trace_event JSON (loadable in Perfetto or \
               chrome://tracing).")

let metrics_out =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Dump the engine's metrics registry (and the process-wide \
               default registry) in Prometheus text exposition format \
               after the run.")

let profile_out =
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE"
         ~doc:"Sample the run with the deterministic virtual-cycle \
               profiler and write the profile (hot methods, hot opcodes, \
               collapsed-stack flame lines) as JSON to FILE.")

let no_flat =
  Arg.(value & flag & info [ "no-flat" ]
         ~doc:"Interpret methods with the tree walker instead of the flat \
               bytecode tier (identical results and cycles; the flat tier \
               only changes host time).")

let cmd =
  Cmd.v
    (Cmd.info "tessera_run" ~doc:"Run a benchmark on the simulated JVM")
    Term.(const run $ targets $ jobs $ model_dir $ iterations $ tir
          $ fault_spec $ fault_seed $ compile_budget $ code_cache_dir
          $ code_cache_mb $ code_cache_readonly $ trace_out $ metrics_out
          $ profile_out $ no_flat)

let () = exit (Cmd.eval' cmd)
